package matmul_test

import (
	"context"
	"fmt"
	"log"

	"repro/matmul"
)

// ExampleSession computes C ← C + A·B through the facade's in-process
// runtime and verifies it against the serial reference product. Swapping
// WithRuntime(matmul.Distributed(addrs...)) or matmul.Remote(daemonAddr)
// in runs the identical job — and produces the identical bits — on remote
// mmworker daemons or an mmserve scheduling service.
func ExampleSession() {
	ctx := context.Background()
	sess, err := matmul.Open(ctx, matmul.WithAlgorithm("Het"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// C (2×3 blocks of 4×4 elements) += A (2×2) · B (2×3); A is the
	// identity here, so the product is easy to eyeball.
	const q = 4
	a := matmul.NewMatrix(2, 2, q)
	b := matmul.NewMatrix(2, 3, q)
	c := matmul.NewMatrix(2, 3, q)
	for i := 0; i < 2*q; i++ {
		a.Set(i, i, 1)
	}
	for i := 0; i < 2*q; i++ {
		for j := 0; j < 3*q; j++ {
			b.Set(i, j, float64(i+j))
		}
	}

	want := c.Clone()
	if err := matmul.Multiply(want, a, b); err != nil {
		log.Fatal(err)
	}

	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job state: %v\n", job.Status().State)
	fmt.Printf("C[3][5] = %.0f\n", c.At(3, 5))
	fmt.Printf("max |C - reference| = %.0f\n", c.MaxAbsDiff(want))
	// Output:
	// job state: done
	// C[3][5] = 8
	// max |C - reference| = 0
}
