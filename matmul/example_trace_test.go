package matmul_test

import (
	"context"
	"fmt"
	"io"
	"log"

	"repro/matmul"
)

// ExampleJob_Trace records a job's execution timeline and exports it as
// Chrome trace-event JSON. InProcess and Distributed sessions record every
// job automatically; after Wait the trace carries one span per protocol
// step — sendC, each sendAB installment, recvC — per worker. Writing it
// through WriteChromeTrace (here to io.Discard; normally a .json file)
// produces a timeline loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Remote sessions return a nil trace: the job executes
// daemon-side, where mmserve -trace-dir exports the same files.
func ExampleJob_Trace() {
	ctx := context.Background()
	sess, err := matmul.Open(ctx, matmul.WithAlgorithm("Het"))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	const q = 4
	a := matmul.NewMatrix(2, 2, q)
	b := matmul.NewMatrix(2, 3, q)
	c := matmul.NewMatrix(2, 3, q)
	for i := 0; i < 2*q; i++ {
		a.Set(i, i, 1)
	}

	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}

	tr := job.Trace()
	fmt.Println("recorded:", tr != nil && len(tr.Transfers) > 0)
	if err := tr.WriteChromeTrace(io.Discard); err != nil {
		log.Fatal(err)
	}
	fmt.Println("perfetto export written")
	// Output:
	// recorded: true
	// perfetto export written
}
