package matmul

import (
	"context"
	"errors"
	"math/rand"
	stdnet "net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
)

// seeded builds the A, B, C operands of one product.
func seeded(t *testing.T, r, s, tt, q int, seed int64) (a, b, c *Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a = NewMatrix(r, tt, q)
	b = NewMatrix(tt, s, q)
	c = NewMatrix(r, s, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	return
}

// engineReference computes the same product through the pre-redesign entry
// point (engine.Run over a scheduled plan) — the bitwise oracle every
// facade runtime must match.
func engineReference(t *testing.T, r, s, tt, q int, seed int64) *Matrix {
	t.Helper()
	a, b, c := seeded(t, r, s, tt, q, seed)
	pl := platform.Homogeneous(2, 1, 1, 60)
	res, err := sched.Het{}.Schedule(pl, sched.Instance{R: r, S: s, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(engine.Config{Workers: pl.P(), T: tt}, res.Plan(), a, b, c); err != nil {
		t.Fatal(err)
	}
	return c
}

// startWorkers launches n loopback mmworker serve loops.
func startWorkers(t *testing.T, n int, opts func(i int) mmnet.WorkerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if opts != nil {
			o = opts(i)
		}
		go mmnet.Serve(ln, addrs[i], o)
	}
	return addrs
}

// startDaemon brings up a full mmserve daemon over a fresh loopback fleet
// and returns its client address.
func startDaemon(t *testing.T, workers int, opts func(i int) mmnet.WorkerOptions) string {
	t.Helper()
	addrs := startWorkers(t, workers, opts)
	fleet, err := serve.NewFleet(addrs, platform.Homogeneous(workers, 1, 1, 60).Workers,
		serve.FleetOptions{Master: mmnet.MasterOptions{IOTimeout: 10 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	srv := serve.NewServer(fleet, serve.Config{MaxWorkersPerJob: 2, Logf: t.Logf})
	t.Cleanup(srv.Close)
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.ListenAndServe(ln)
	return ln.Addr().String()
}

// runtimes enumerates a Session per runtime over shared loopback
// infrastructure, for tests that must cover all three.
func runtimes(t *testing.T, workerOpts func(i int) mmnet.WorkerOptions) map[string][]Option {
	t.Helper()
	return map[string][]Option{
		"inprocess":   nil,
		"distributed": {WithRuntime(Distributed(startWorkers(t, 2, workerOpts)...))},
		"remote":      {WithRuntime(Remote(startDaemon(t, 2, workerOpts)))},
	}
}

// TestSessionAllRuntimesBitwiseIdentical is the acceptance check of the
// facade: the same product submitted through every runtime produces a C
// bitwise-identical to the pre-redesign entry point's.
func TestSessionAllRuntimesBitwiseIdentical(t *testing.T) {
	const r, s, tt, q, seed = 6, 9, 4, 8, 42
	want := engineReference(t, r, s, tt, q, seed)

	for name, opts := range runtimes(t, nil) {
		t.Run(name, func(t *testing.T) {
			sess, err := Open(context.Background(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			a, b, c := seeded(t, r, s, tt, q, seed)
			job, err := sess.Submit(context.Background(), a, b, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			if st := job.Status(); st.State != JobDone || st.Err != nil {
				t.Fatalf("status after success: %v / %v", st.State, st.Err)
			}
			if d := c.MaxAbsDiff(want); d != 0 {
				t.Errorf("C differs from the pre-redesign entry point by %g (want bitwise equal)", d)
			}
		})
	}
}

// TestSessionOptionsMatchDirectEngine drives the option surface (algorithm,
// platform, pacing, one-port, procs, sequential executor) and checks the
// result still matches a direct engine.Run with the same knobs bitwise.
func TestSessionOptionsMatchDirectEngine(t *testing.T) {
	const r, s, tt, q, seed = 5, 7, 3, 4, 7
	pl := platform.MustNew(
		Worker{C: 1, W: 1, M: 40},
		Worker{C: 2, W: 1.5, M: 24},
	)
	res, err := sched.BMM{}.Schedule(pl, sched.Instance{R: r, S: s, T: tt})
	if err != nil {
		t.Fatal(err)
	}
	a, b, want := seeded(t, r, s, tt, q, seed)
	cfg := engine.Config{
		Workers: pl.P(), T: tt, Platform: pl, TimePerUnit: time.Microsecond,
		Pipelined: true, OnePort: true, Procs: 2,
	}
	if err := engine.Run(cfg, res.Plan(), a, b, want); err != nil {
		t.Fatal(err)
	}

	sess, err := Open(context.Background(),
		WithAlgorithm("BMM"),
		WithPlatform(pl.Workers...),
		WithPacing(time.Microsecond),
		WithOnePort(true),
		WithProcs(2),
		WithPipelined(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a2, b2, c2 := seeded(t, r, s, tt, q, seed)
	job, err := sess.Submit(context.Background(), a2, b2, c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := c2.MaxAbsDiff(want); d != 0 {
		t.Errorf("facade C differs from direct engine.Run by %g (want bitwise equal)", d)
	}
}

// TestJobCancelEveryRuntime cancels a mid-run job on each runtime and
// demands a prompt return with context.Canceled in the chain. In-process
// the job is slowed by paced transfers; the networked runtimes get a worker
// that stalls mid-job while heartbeating (the live-but-wedged case only
// cancellation can end).
func TestJobCancelEveryRuntime(t *testing.T) {
	stalled := func(i int) mmnet.WorkerOptions {
		return mmnet.WorkerOptions{
			Heartbeat:          50 * time.Millisecond,
			StallAfterInstalls: 1,
			StallFor:           30 * time.Second,
		}
	}
	cases := map[string][]Option{
		"inprocess":   {WithPacing(time.Millisecond)}, // plan paces for seconds
		"distributed": {WithRuntime(Distributed(startWorkers(t, 2, stalled)...))},
		"remote":      {WithRuntime(Remote(startDaemon(t, 2, stalled)))},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			sess, err := Open(context.Background(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			a, b, c := seeded(t, 8, 16, 6, 8, 11)
			job, err := sess.Submit(context.Background(), a, b, c)
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				time.Sleep(300 * time.Millisecond)
				job.Cancel()
			}()
			start := time.Now()
			err = job.Wait(context.Background())
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled job returned %v, want context.Canceled in the chain", err)
			}
			if st := job.Status(); st.State != JobCanceled {
				t.Fatalf("cancelled job state %v, want canceled", st.State)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("cancelled job took %v to come back, want prompt abort", elapsed)
			}
			select {
			case <-job.Done():
			default:
				t.Fatal("Done channel not closed after terminal state")
			}
		})
	}
}

// TestSubmitCtxCancelPropagates: cancelling the Submit context (not calling
// Job.Cancel) cancels the job too — the SIGINT wiring of the cmds.
func TestSubmitCtxCancelPropagates(t *testing.T) {
	sess, err := Open(context.Background(), WithPacing(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithCancel(context.Background())
	a, b, c := seeded(t, 8, 16, 6, 8, 13)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx-cancelled job returned %v, want context.Canceled", err)
	}
}

// TestSessionCloseCancelsOutstandingJobs: Close is a graceful teardown, not
// a hang — outstanding jobs are cancelled and their waiters released.
func TestSessionCloseCancelsOutstandingJobs(t *testing.T) {
	sess, err := Open(context.Background(), WithPacing(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := seeded(t, 8, 16, 6, 8, 17)
	job, err := sess.Submit(context.Background(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("job after Close returned %v, want context.Canceled", err)
	}
	if _, err := sess.Submit(context.Background(), a, b, c); err == nil {
		t.Fatal("Submit on a closed session succeeded")
	}
}

// TestRemoteConcurrentJobs: a Remote session multiplexes concurrent jobs
// onto the daemon's disjoint leases; both verify bitwise and both report
// their daemon-side ids.
func TestRemoteConcurrentJobs(t *testing.T) {
	daemon := startDaemon(t, 4, nil)
	sess, err := Open(context.Background(), WithRuntime(Remote(daemon)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const r, s, tt, q = 6, 9, 4, 8
	type one struct {
		c    *Matrix
		want *Matrix
		job  *Job
	}
	jobs := make([]one, 2)
	for i := range jobs {
		seed := int64(100 + i)
		a, b, c := seeded(t, r, s, tt, q, seed)
		jobs[i] = one{c: c, want: engineReference(t, r, s, tt, q, seed)}
		job, err := sess.Submit(context.Background(), a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i].job = job
	}
	for i, j := range jobs {
		if err := j.job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if d := j.c.MaxAbsDiff(j.want); d != 0 {
			t.Errorf("job %d: C differs by %g (want bitwise equal)", i, d)
		}
		if id := j.job.Status().RemoteID; id == 0 {
			t.Errorf("job %d: no daemon-side id recorded", i)
		}
	}
}

// TestOptionValidation pins the option/runtime compatibility matrix.
func TestOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Open(ctx, WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Open(ctx, WithRuntime(Distributed())); err == nil {
		t.Error("Distributed with no addresses accepted")
	}
	if _, err := Open(ctx, WithRuntime(Distributed("127.0.0.1:1")), WithPacing(time.Millisecond)); err == nil {
		t.Error("WithPacing accepted on the Distributed runtime")
	}
	if _, err := Open(ctx, WithRuntime(Distributed("127.0.0.1:1")), WithProcs(4)); err == nil {
		t.Error("WithProcs accepted on the Distributed runtime")
	}
	if _, err := Open(ctx, WithRuntime(Remote("127.0.0.1:1")), WithAlgorithm("Het")); err == nil {
		t.Error("WithAlgorithm accepted on the Remote runtime")
	}
	if _, err := Open(ctx, WithRuntime(Remote(""))); err == nil {
		t.Error("Remote with empty address accepted")
	}
	sess, err := Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Submit(ctx, nil, nil, nil); err == nil {
		t.Error("nil operands accepted")
	}
	a := NewMatrix(2, 3, 4)
	b := NewMatrix(3, 2, 4)
	bad := NewMatrix(2, 2, 8)
	if _, err := sess.Submit(ctx, a, b, bad); err == nil {
		t.Error("mismatched block edges accepted")
	}
}

// TestMatrixAliasInterop: the facade's Matrix type is usable with the
// internal oracle directly (one type, no conversions), which is what makes
// the repo embeddable without exporting the internal packages.
func TestMatrixAliasInterop(t *testing.T) {
	var m *Matrix = matrix.NewBlockMatrix(2, 2, 4)
	if m.Rows != 2 || m.Q != 4 {
		t.Fatalf("alias mismatch: %dx%d q=%d", m.Rows, m.Cols, m.Q)
	}
}

// TestDistributedQueuedJobCancelPrompt: a job waiting its turn behind a
// Distributed session's in-flight job must observe cancellation
// immediately, not after the running job drains.
func TestDistributedQueuedJobCancelPrompt(t *testing.T) {
	stalled := func(i int) mmnet.WorkerOptions {
		return mmnet.WorkerOptions{
			Heartbeat:          50 * time.Millisecond,
			StallAfterInstalls: 1,
			StallFor:           10 * time.Second,
		}
	}
	sess, err := Open(context.Background(), WithRuntime(Distributed(startWorkers(t, 2, stalled)...)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seeded(t, 6, 9, 4, 8, 21)
	running, err := sess.Submit(context.Background(), a, b, c) // wedges on the stall
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job's goroutine holds the session semaphore
	// before the second submission exists: Submit order does not promise
	// dispatch order (each job races for the semaphore), and this test's
	// roles depend on job one running and job two queueing.
	ds := sess.rts.(*distributedSession)
	for deadline := time.Now().Add(5 * time.Second); len(ds.sem) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first job never took the session semaphore")
		}
		time.Sleep(time.Millisecond)
	}
	a2, b2, c2 := seeded(t, 6, 9, 4, 8, 22)
	queued, err := sess.Submit(context.Background(), a2, b2, c2) // parks on the session semaphore
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	queued.Cancel()
	start := time.Now()
	if err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued job returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queued job took %v to observe its cancel; must not wait for the running job", elapsed)
	}
	running.Cancel()
	if err := running.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("running job returned %v, want context.Canceled", err)
	}
}
