package matmul

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/coded"
	"repro/internal/engine"
	"repro/internal/kernel"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
)

// trackerUnit seeds a session's estimate tracker from the declared platform
// when no pacing gives the model units a real duration: declared costs
// become microseconds, and the first observed job pulls every used worker
// onto the measured scale (only the declared ratios matter).
const trackerUnit = time.Microsecond

// statsFromTracker renders the shared stats shape from a platform and an
// optional tracker.
// workerKernel resolves worker i's kernel name; nil means every worker runs
// in this process and shares the session's kernel.
func statsFromTracker(pl *platform.Platform, tr *adapt.Tracker, replans int, workerKernel func(i int) string) SessionStats {
	st := SessionStats{Kernel: kernel.Name(), Adaptive: tr != nil, Replans: replans}
	var est []adapt.Estimate
	if tr != nil {
		est = tr.Snapshot()
	}
	for i, w := range pl.Workers {
		ws := WorkerStats{Name: w.Name, Spec: w}
		if kern := workerKernel(i); kern != "" {
			ws.Kernel = kern
		}
		if i < len(est) {
			e := est[i]
			if e.Transfers+e.Computes > 0 {
				ws.CPerBlock = time.Duration(e.C * float64(time.Second))
				ws.WPerUpdate = time.Duration(e.W * float64(time.Second))
				ws.Samples = e.Transfers + e.Computes
			}
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

// Runtime selects where a Session's jobs execute. The three implementations
// are InProcess, Distributed and Remote; a Runtime is opened once per
// Session and owns nothing until then.
type Runtime interface {
	// open validates cfg against this runtime and brings up the session
	// (dialing workers or nothing at all). ctx bounds the open.
	open(ctx context.Context, cfg *config) (runtimeSession, error)
}

// runtimeSession is one opened runtime: it executes submitted jobs and is
// closed exactly once, after every job goroutine has unwound.
type runtimeSession interface {
	// run executes one product under ctx, updating c in place. a and b are
	// operand handles (installed or transient; see Session.operandOf) so a
	// caching runtime can reach their memoized panel digests. It reports
	// cancellation as an error wrapping context.Canceled.
	run(ctx context.Context, j *Job, a, b *Operand, c *Matrix) error
	close() error
}

// localTracer marks runtime sessions whose executor runs in this process,
// so Submit can thread a trace recorder through the job's context and
// Job.Trace can return the recorded timeline. Remote sessions are not one:
// the daemon executes the job, and recording lives there.
type localTracer interface{ tracesLocally() }

// InProcess is the verification runtime: goroutine workers in this process,
// channels as links, optionally paced at the platform's link costs
// (WithPacing) under a one-port master (WithOnePort).
func InProcess() Runtime { return inProcessRuntime{} }

type inProcessRuntime struct{}

func (inProcessRuntime) open(_ context.Context, cfg *config) (runtimeSession, error) {
	if cfg.setShutdown {
		return nil, fmt.Errorf("matmul: WithWorkerShutdown applies to the Distributed runtime only; there are no worker daemons in-process")
	}
	if cfg.setPanelCache {
		return nil, fmt.Errorf("matmul: WithPanelCache applies to runtimes with a wire (Distributed, Remote); in-process workers share the operands already")
	}
	pl := cfg.platform
	if pl == nil {
		// The default testbed: small and heterogeneous, so plans exercise
		// many chunk shapes (same default cmd/mmrun has always used).
		pl = platform.MustNew(
			platform.Worker{C: 1, W: 1, M: 60},
			platform.Worker{C: 1.5, W: 1.2, M: 40},
			platform.Worker{C: 2, W: 1.5, M: 24},
			platform.Worker{C: 3, W: 2, M: 96},
		)
	}
	sess := &inProcessSession{cfg: cfg, pl: pl}
	if cfg.adaptive {
		unit := cfg.pacing
		if unit <= 0 {
			unit = trackerUnit
		}
		sess.tracker = adapt.NewTracker(pl.Workers, unit, 0)
	}
	return sess, nil
}

type inProcessSession struct {
	cfg     *config
	pl      *platform.Platform
	tracker *adapt.Tracker // non-nil iff WithAdaptive
	replans atomic.Int32
}

func (s *inProcessSession) run(ctx context.Context, _ *Job, ah, bh *Operand, c *Matrix) error {
	a, b := ah.mat, bh.mat
	plan, err := schedule(s.cfg, s.pl, a, c)
	if err != nil {
		return err
	}
	ecfg := engine.Config{
		Workers: s.pl.P(), T: a.Cols,
		Platform: s.pl, TimePerUnit: s.cfg.pacing,
		Pipelined: s.cfg.pipelined, OnePort: s.cfg.onePort, Procs: s.cfg.procs,
	}
	if s.cfg.redundant() {
		// Redundant jobs run through the k-of-n gate, which subsumes the
		// elastic executor's failover; an adaptive session's estimates still
		// price the redundant placement.
		red, err := planRedundancy(s.cfg, a.Cols, plan, a, c, s.pl.P(), s.tracker)
		if err != nil {
			return err
		}
		return engine.RunRedundantContext(ctx, ecfg, plan, a, b, c, red)
	}
	if s.tracker != nil {
		// The in-process fleet is fixed (goroutine workers neither crash nor
		// join), so elasticity here means estimate tracking plus
		// drift-triggered rebalancing of the un-dispatched chunks.
		el := &engine.Elastic{
			Tracker:        s.tracker,
			DriftThreshold: s.cfg.drift,
			OnReplan:       func(string, int) { s.replans.Add(1) },
		}
		return engine.RunElasticContext(ctx, ecfg, plan, a, b, c, el)
	}
	return engine.RunContext(ctx, ecfg, plan, a, b, c)
}

func (s *inProcessSession) stats(context.Context) (SessionStats, error) {
	st := statsFromTracker(s.pl, s.tracker, int(s.replans.Load()), func(int) string { return kernel.Name() })
	if s.cfg.redundant() {
		st.Redundancy = string(s.cfg.redundancy)
	}
	return st, nil
}

func (s *inProcessSession) close() error { return nil }

func (s *inProcessSession) tracesLocally() {}

// Distributed drives remote mmworker daemons over TCP: the session dials
// every address at Open and replays plans over those links. Jobs execute
// one at a time (the links are the session's single fleet); submit to an
// mmserve daemon via Remote for concurrent multi-job scheduling.
func Distributed(addrs ...string) Runtime { return distributedRuntime{addrs: addrs} }

type distributedRuntime struct{ addrs []string }

func (r distributedRuntime) open(ctx context.Context, cfg *config) (runtimeSession, error) {
	if len(r.addrs) == 0 {
		return nil, fmt.Errorf("matmul: Distributed needs at least one worker address")
	}
	if cfg.setPacing {
		return nil, fmt.Errorf("matmul: WithPacing applies to the InProcess runtime only; distributed links are real")
	}
	if cfg.setProcs {
		return nil, fmt.Errorf("matmul: WithProcs applies to the InProcess runtime only; remote workers set their own parallelism via mmworker -procs")
	}
	pl := cfg.platform
	if pl == nil {
		// Remote capabilities are not probed; model them as homogeneous.
		pl = platform.Homogeneous(len(r.addrs), 1, 1, 60)
	} else if pl.P() != len(r.addrs) {
		return nil, fmt.Errorf("matmul: platform describes %d workers but %d addresses were dialed", pl.P(), len(r.addrs))
	}
	m, err := mmnet.DialContext(ctx, r.addrs, &mmnet.MasterOptions{OnePort: cfg.onePort})
	if err != nil {
		return nil, err
	}
	sess := &distributedSession{cfg: cfg, pl: pl, m: m, sem: make(chan struct{}, 1)}
	if cfg.adaptive {
		sess.tracker = adapt.NewTracker(pl.Workers, trackerUnit, 0)
		sess.join = make(chan int, 16)
	}
	return sess, nil
}

type distributedSession struct {
	cfg *config
	m   *mmnet.Master

	// sem serializes jobs over the shared links. A semaphore rather than a
	// mutex so a job cancelled while waiting its turn leaves immediately
	// instead of riding out the job in flight.
	sem chan struct{}

	tracker *adapt.Tracker // non-nil iff WithAdaptive
	join    chan int       // elastic join feed into the running job
	replans atomic.Int32
	// addMu pairs a master AddWorker with the platform/tracker growth, so
	// the three index spaces cannot interleave differently.
	addMu sync.Mutex

	mu     sync.Mutex         // guards broken and pl
	pl     *platform.Platform // grows with AddWorker
	broken error              // first failed run; the links are tainted after it
}

func (s *distributedSession) run(ctx context.Context, _ *Job, ah, bh *Operand, c *Matrix) error {
	a, b := ah.mat, bh.mat
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return fmt.Errorf("matmul: job canceled while queued behind the session's running job: %w", ctx.Err())
	}
	s.mu.Lock()
	broken, pl := s.broken, s.pl
	s.mu.Unlock()
	if broken != nil {
		return fmt.Errorf("matmul: session unusable after an aborted job (%v); open a fresh one", broken)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("matmul: job canceled before dispatch: %w", err)
	}
	plan, err := schedule(s.cfg, pl, a, c)
	if err != nil {
		return err
	}
	if s.cfg.panelCache {
		// Open the job's cache epoch over the shared links (the sem makes
		// jobs sequential, so epochs cannot interleave): worker daemons that
		// kept these operands' panels from an earlier job skip the transfers.
		s.m.BeginJob(jobPanels(ah, bh))
		defer s.m.EndJob()
	}
	switch {
	case s.cfg.redundant():
		// The gate subsumes elastic failover for this job; see the
		// in-process run path. A plan error aborts before any dispatch, so
		// the links stay clean for the next job.
		var red *engine.Redundancy
		red, err = planRedundancy(s.cfg, a.Cols, plan, a, c, pl.P(), s.tracker)
		if err != nil {
			return err
		}
		err = s.m.RunRedundantContext(ctx, a.Cols, plan, a, b, c, red)
	case s.tracker != nil:
		el := &engine.Elastic{
			Tracker:        s.tracker,
			Join:           s.join,
			DriftThreshold: s.cfg.drift,
			OnReplan:       func(string, int) { s.replans.Add(1) },
		}
		err = s.m.RunElasticContext(ctx, a.Cols, plan, a, b, c, el)
	case s.cfg.pipelined:
		err = s.m.RunPipelinedContext(ctx, a.Cols, plan, a, b, c)
	default:
		err = s.m.RunContext(ctx, a.Cols, plan, a, b, c)
	}
	if err != nil {
		// The reusable-backend contract covers successful runs only: after a
		// failure (cancellation included) workers may hold chunks, so the
		// session must not dispatch further jobs over these links.
		s.mu.Lock()
		s.broken = err
		s.mu.Unlock()
	}
	return err
}

// addWorker implements Session.AddWorker: dial, join the master (mid-run
// included), grow the scheduling platform for subsequent jobs, and — when
// adaptive — track the newcomer and feed its index to the running job's
// elastic executor.
func (s *distributedSession) addWorker(ctx context.Context, addr string, spec Worker) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	s.addMu.Lock()
	defer s.addMu.Unlock()
	wc, err := mmnet.DialWorkerContext(ctx, addr, &mmnet.MasterOptions{OnePort: s.cfg.onePort})
	if err != nil {
		return 0, err
	}
	w, err := s.m.AddWorker(wc)
	if err != nil {
		wc.Release()
		return 0, err
	}
	if spec.Name == "" {
		spec.Name = addr
	}
	s.mu.Lock()
	ws := append(append([]platform.Worker(nil), s.pl.Workers...), spec)
	grown, perr := platform.New(ws...)
	if perr == nil {
		s.pl = grown
	}
	s.mu.Unlock()
	if perr != nil {
		return 0, perr
	}
	if s.tracker != nil {
		s.tracker.Grow(spec, trackerUnit)
		select {
		case s.join <- w:
		default:
			// No run is draining the channel and the buffer is full; the
			// worker still serves every subsequent job via the grown platform.
		}
	}
	return w, nil
}

func (s *distributedSession) stats(context.Context) (SessionStats, error) {
	s.mu.Lock()
	pl := s.pl
	s.mu.Unlock()
	kernels := s.m.WorkerKernels()
	st := statsFromTracker(pl, s.tracker, int(s.replans.Load()), func(i int) string {
		if i < len(kernels) {
			return kernels[i]
		}
		return ""
	})
	if s.cfg.panelCache {
		// The session drives one master for its whole life, so the per-link
		// counters are already session totals.
		tot := &PanelCacheStats{}
		for i, ws := range s.m.CacheStats() {
			if i < len(st.Workers) {
				w := &st.Workers[i]
				w.CacheHits, w.CacheMisses = ws.PanelHits, ws.PanelMisses
				w.CacheSentBytes = ws.ASentBytes + ws.BSentBytes
				w.CacheSavedBytes = ws.ASavedBytes + ws.BSavedBytes
				w.ResidentPanels = int(ws.ResidentPanels)
				w.ResidentBytes = ws.ResidentBytes
			}
			tot.PanelHits += ws.PanelHits
			tot.PanelMisses += ws.PanelMisses
			tot.ASentBytes += ws.ASentBytes
			tot.ASavedBytes += ws.ASavedBytes
			tot.BSentBytes += ws.BSentBytes
			tot.BSavedBytes += ws.BSavedBytes
			tot.ResidentBytes += ws.ResidentBytes
		}
		st.PanelCache = tot
	}
	if s.cfg.redundant() {
		st.Redundancy = string(s.cfg.redundancy)
	}
	return st, nil
}

func (s *distributedSession) tracesLocally() {}

func (s *distributedSession) close() error {
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if broken != nil {
		// Tainted links cannot be handed back mid-protocol; drop them. The
		// worker daemons survive (their serve loops accept the next master).
		s.m.Close()
		return nil
	}
	if s.cfg.shutdown {
		return s.m.Shutdown()
	}
	return s.m.Release()
}

// Remote submits jobs to an mmserve scheduling daemon: the daemon queues
// them, selects a throughput-best worker subset per job, and runs disjoint
// leases concurrently. Scheduling choices live daemon-side, so the
// scheduling options (WithAlgorithm, WithPlatform, …) are rejected here.
func Remote(addr string) Runtime { return remoteRuntime{addr: addr} }

type remoteRuntime struct{ addr string }

func (r remoteRuntime) open(_ context.Context, cfg *config) (runtimeSession, error) {
	if r.addr == "" {
		return nil, fmt.Errorf("matmul: Remote needs the daemon address")
	}
	if cfg.setRedundancy {
		return nil, fmt.Errorf("matmul: WithRedundancy does not apply to the Remote runtime; the mmserve daemon owns redundancy (see its -redundancy flag)")
	}
	reject := func(set bool, opt string) error {
		if set {
			return fmt.Errorf("matmul: %s does not apply to the Remote runtime; the mmserve daemon owns scheduling (see its -alg and -specs flags)", opt)
		}
		return nil
	}
	for _, rj := range []struct {
		set bool
		opt string
	}{
		{cfg.setAlgorithm, "WithAlgorithm"},
		{cfg.setPlatform, "WithPlatform"},
		{cfg.setPacing, "WithPacing"},
		{cfg.setProcs, "WithProcs"},
		{cfg.setOnePort, "WithOnePort"},
		{cfg.setPipelined, "WithPipelined"},
		{cfg.setShutdown, "WithWorkerShutdown"},
		{cfg.setAdaptive, "WithAdaptive"},
	} {
		if err := reject(rj.set, rj.opt); err != nil {
			return nil, err
		}
	}
	return &remoteSession{addr: r.addr, cacheOn: cfg.panelCache}, nil
}

type remoteSession struct {
	addr    string
	cacheOn bool
}

func (s *remoteSession) run(ctx context.Context, j *Job, ah, bh *Operand, c *Matrix) error {
	a, b := ah.mat, bh.mat
	// With caching on, ship the operands' digests with the blocks so the
	// daemon can route by affinity and its workers can skip resident panels —
	// without re-hashing A and B server-side. Installed handles make this
	// nearly free on every submission after the first. The job's SLO class
	// (WithClass) rides the same frame; the daemon's queue policy and
	// admission control act on it.
	var jp *cache.JobPanels
	if s.cacheOn {
		jp = jobPanels(ah, bh)
	}
	out, id, err := serve.SubmitProductClass(ctx, s.addr, a, b, c, jp, j.class)
	if id != 0 {
		j.setRemoteID(id)
		// The daemon records every job's timeline; expose it through
		// Job.Trace by fetching on demand once the job is terminal there.
		addr := s.addr
		j.setTraceFetch(func(ctx context.Context) (*trace.Trace, error) {
			return serve.FetchTraceContext(ctx, addr, id)
		})
	}
	if err != nil {
		return err
	}
	// The wire round-trips C; fold the result back into the caller's C so
	// the in-place contract holds on every runtime.
	for i := 0; i < c.Rows; i++ {
		for k := 0; k < c.Cols; k++ {
			c.SetBlock(i, k, out.Block(i, k))
		}
	}
	return nil
}

// stats fetches the daemon's snapshot and renders it in the session shape:
// on an adaptive daemon the estimates are the fleet-wide measured costs.
func (s *remoteSession) stats(ctx context.Context) (SessionStats, error) {
	ds, err := serve.FetchStatsContext(ctx, s.addr)
	if err != nil {
		return SessionStats{}, err
	}
	st := SessionStats{Kernel: ds.Kernel, Adaptive: ds.Adaptive, Redundancy: ds.Redundancy}
	if dc := ds.Cache; dc != nil {
		st.PanelCache = &PanelCacheStats{
			PanelHits: dc.PanelHits, PanelMisses: dc.PanelMisses,
			ASentBytes: dc.ASentBytes, ASavedBytes: dc.ASavedBytes,
			BSentBytes: dc.BSentBytes, BSavedBytes: dc.BSavedBytes,
			ResidentBytes: dc.ResidentBytes,
		}
	}
	for _, w := range ds.Workers {
		ws := WorkerStats{Name: w.Name, Kernel: w.Kernel, Spec: w.Spec, Samples: w.Samples}
		if ws.Name == "" {
			ws.Name = w.Addr
		}
		if w.Samples > 0 {
			ws.CPerBlock = time.Duration(w.EstC * float64(time.Millisecond))
			ws.WPerUpdate = time.Duration(w.EstW * float64(time.Millisecond))
		}
		ws.CacheHits, ws.CacheMisses = w.CacheHits, w.CacheMisses
		ws.CacheSentBytes, ws.CacheSavedBytes = w.SentBytes, w.SavedBytes
		ws.ResidentPanels, ws.ResidentBytes = w.ResidentPanels, w.ResidentBytes
		st.Workers = append(st.Workers, ws)
	}
	for _, js := range ds.Jobs {
		st.Replans += js.Replans
	}
	return st, nil
}

func (s *remoteSession) close() error { return nil }

// planRedundancy builds the k-of-n gate input for one local job: mode and
// factor from the session config, placement priced by the tracker's live
// estimates when the session is adaptive.
func planRedundancy(cfg *config, t int, plan []sim.PlanOp, a, c *Matrix, workers int, tr *adapt.Tracker) (*engine.Redundancy, error) {
	opts := coded.Options{Mode: cfg.redundancy, R: cfg.redundancyR}
	if tr != nil {
		opts.Estimator = tr
	}
	return coded.Plan(t, plan, a, c, workers, opts)
}

// schedule plans one job's product on pl with the session's scheduler and
// returns the replayable plan.
func schedule(cfg *config, pl *platform.Platform, a, c *Matrix) ([]sim.PlanOp, error) {
	inst := sched.Instance{R: c.Rows, S: c.Cols, T: a.Cols}
	res, err := cfg.scheduler.Schedule(pl, inst)
	if err != nil {
		return nil, fmt.Errorf("matmul: schedule %s: %w", cfg.algorithm, err)
	}
	return res.Plan(), nil
}
