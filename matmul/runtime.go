package matmul

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Runtime selects where a Session's jobs execute. The three implementations
// are InProcess, Distributed and Remote; a Runtime is opened once per
// Session and owns nothing until then.
type Runtime interface {
	// open validates cfg against this runtime and brings up the session
	// (dialing workers or nothing at all). ctx bounds the open.
	open(ctx context.Context, cfg *config) (runtimeSession, error)
}

// runtimeSession is one opened runtime: it executes submitted jobs and is
// closed exactly once, after every job goroutine has unwound.
type runtimeSession interface {
	// run executes one product under ctx, updating c in place. It reports
	// cancellation as an error wrapping context.Canceled.
	run(ctx context.Context, j *Job, a, b, c *Matrix) error
	close() error
}

// InProcess is the verification runtime: goroutine workers in this process,
// channels as links, optionally paced at the platform's link costs
// (WithPacing) under a one-port master (WithOnePort).
func InProcess() Runtime { return inProcessRuntime{} }

type inProcessRuntime struct{}

func (inProcessRuntime) open(_ context.Context, cfg *config) (runtimeSession, error) {
	if cfg.setShutdown {
		return nil, fmt.Errorf("matmul: WithWorkerShutdown applies to the Distributed runtime only; there are no worker daemons in-process")
	}
	pl := cfg.platform
	if pl == nil {
		// The default testbed: small and heterogeneous, so plans exercise
		// many chunk shapes (same default cmd/mmrun has always used).
		pl = platform.MustNew(
			platform.Worker{C: 1, W: 1, M: 60},
			platform.Worker{C: 1.5, W: 1.2, M: 40},
			platform.Worker{C: 2, W: 1.5, M: 24},
			platform.Worker{C: 3, W: 2, M: 96},
		)
	}
	return &inProcessSession{cfg: cfg, pl: pl}, nil
}

type inProcessSession struct {
	cfg *config
	pl  *platform.Platform
}

func (s *inProcessSession) run(ctx context.Context, _ *Job, a, b, c *Matrix) error {
	plan, err := schedule(s.cfg, s.pl, a, c)
	if err != nil {
		return err
	}
	ecfg := engine.Config{
		Workers: s.pl.P(), T: a.Cols,
		Platform: s.pl, TimePerUnit: s.cfg.pacing,
		Pipelined: s.cfg.pipelined, OnePort: s.cfg.onePort, Procs: s.cfg.procs,
	}
	return engine.RunContext(ctx, ecfg, plan, a, b, c)
}

func (s *inProcessSession) close() error { return nil }

// Distributed drives remote mmworker daemons over TCP: the session dials
// every address at Open and replays plans over those links. Jobs execute
// one at a time (the links are the session's single fleet); submit to an
// mmserve daemon via Remote for concurrent multi-job scheduling.
func Distributed(addrs ...string) Runtime { return distributedRuntime{addrs: addrs} }

type distributedRuntime struct{ addrs []string }

func (r distributedRuntime) open(ctx context.Context, cfg *config) (runtimeSession, error) {
	if len(r.addrs) == 0 {
		return nil, fmt.Errorf("matmul: Distributed needs at least one worker address")
	}
	if cfg.setPacing {
		return nil, fmt.Errorf("matmul: WithPacing applies to the InProcess runtime only; distributed links are real")
	}
	if cfg.setProcs {
		return nil, fmt.Errorf("matmul: WithProcs applies to the InProcess runtime only; remote workers set their own parallelism via mmworker -procs")
	}
	pl := cfg.platform
	if pl == nil {
		// Remote capabilities are not probed; model them as homogeneous.
		pl = platform.Homogeneous(len(r.addrs), 1, 1, 60)
	} else if pl.P() != len(r.addrs) {
		return nil, fmt.Errorf("matmul: platform describes %d workers but %d addresses were dialed", pl.P(), len(r.addrs))
	}
	m, err := mmnet.DialContext(ctx, r.addrs, &mmnet.MasterOptions{OnePort: cfg.onePort})
	if err != nil {
		return nil, err
	}
	return &distributedSession{cfg: cfg, pl: pl, m: m, sem: make(chan struct{}, 1)}, nil
}

type distributedSession struct {
	cfg *config
	pl  *platform.Platform
	m   *mmnet.Master

	// sem serializes jobs over the shared links. A semaphore rather than a
	// mutex so a job cancelled while waiting its turn leaves immediately
	// instead of riding out the job in flight.
	sem chan struct{}

	mu     sync.Mutex // guards broken
	broken error      // first failed run; the links are tainted after it
}

func (s *distributedSession) run(ctx context.Context, _ *Job, a, b, c *Matrix) error {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return fmt.Errorf("matmul: job canceled while queued behind the session's running job: %w", ctx.Err())
	}
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if broken != nil {
		return fmt.Errorf("matmul: session unusable after an aborted job (%v); open a fresh one", broken)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("matmul: job canceled before dispatch: %w", err)
	}
	plan, err := schedule(s.cfg, s.pl, a, c)
	if err != nil {
		return err
	}
	if s.cfg.pipelined {
		err = s.m.RunPipelinedContext(ctx, a.Cols, plan, a, b, c)
	} else {
		err = s.m.RunContext(ctx, a.Cols, plan, a, b, c)
	}
	if err != nil {
		// The reusable-backend contract covers successful runs only: after a
		// failure (cancellation included) workers may hold chunks, so the
		// session must not dispatch further jobs over these links.
		s.mu.Lock()
		s.broken = err
		s.mu.Unlock()
	}
	return err
}

func (s *distributedSession) close() error {
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if broken != nil {
		// Tainted links cannot be handed back mid-protocol; drop them. The
		// worker daemons survive (their serve loops accept the next master).
		s.m.Close()
		return nil
	}
	if s.cfg.shutdown {
		return s.m.Shutdown()
	}
	return s.m.Release()
}

// Remote submits jobs to an mmserve scheduling daemon: the daemon queues
// them, selects a throughput-best worker subset per job, and runs disjoint
// leases concurrently. Scheduling choices live daemon-side, so the
// scheduling options (WithAlgorithm, WithPlatform, …) are rejected here.
func Remote(addr string) Runtime { return remoteRuntime{addr: addr} }

type remoteRuntime struct{ addr string }

func (r remoteRuntime) open(_ context.Context, cfg *config) (runtimeSession, error) {
	if r.addr == "" {
		return nil, fmt.Errorf("matmul: Remote needs the daemon address")
	}
	reject := func(set bool, opt string) error {
		if set {
			return fmt.Errorf("matmul: %s does not apply to the Remote runtime; the mmserve daemon owns scheduling (see its -alg and -specs flags)", opt)
		}
		return nil
	}
	for _, rj := range []struct {
		set bool
		opt string
	}{
		{cfg.setAlgorithm, "WithAlgorithm"},
		{cfg.setPlatform, "WithPlatform"},
		{cfg.setPacing, "WithPacing"},
		{cfg.setProcs, "WithProcs"},
		{cfg.setOnePort, "WithOnePort"},
		{cfg.setPipelined, "WithPipelined"},
		{cfg.setShutdown, "WithWorkerShutdown"},
	} {
		if err := reject(rj.set, rj.opt); err != nil {
			return nil, err
		}
	}
	return &remoteSession{addr: r.addr}, nil
}

type remoteSession struct{ addr string }

func (s *remoteSession) run(ctx context.Context, j *Job, a, b, c *Matrix) error {
	out, id, err := serve.SubmitProductContext(ctx, s.addr, a, b, c)
	if id != 0 {
		j.setRemoteID(id)
	}
	if err != nil {
		return err
	}
	// The wire round-trips C; fold the result back into the caller's C so
	// the in-place contract holds on every runtime.
	for i := 0; i < c.Rows; i++ {
		for k := 0; k < c.Cols; k++ {
			c.SetBlock(i, k, out.Block(i, k))
		}
	}
	return nil
}

func (s *remoteSession) close() error { return nil }

// schedule plans one job's product on pl with the session's scheduler and
// returns the replayable plan.
func schedule(cfg *config, pl *platform.Platform, a, c *Matrix) ([]sim.PlanOp, error) {
	inst := sched.Instance{R: c.Rows, S: c.Cols, T: a.Cols}
	res, err := cfg.scheduler.Schedule(pl, inst)
	if err != nil {
		return nil, fmt.Errorf("matmul: schedule %s: %w", cfg.algorithm, err)
	}
	return res.Plan(), nil
}
