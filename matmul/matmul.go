// Package matmul is the public facade of the repository: one small, stable
// API over every execution tier of the heterogeneous master-worker matrix
// product (Dongarra, Pineau, Robert, Shi, Vivien, PPoPP 2008).
//
// matmul.Open returns a Session backed by a pluggable Runtime:
//
//   - InProcess — goroutine workers in this process (the verification
//     engine); supports modeled link pacing and the one-port master.
//   - Distributed — remote mmworker daemons driven over TCP, dialed once
//     per session and reused across jobs.
//   - Remote — an mmserve scheduling daemon: jobs queue there, each gets a
//     throughput-best leased subset of the daemon's persistent fleet (the
//     paper's resource selection, per product).
//
// Session.Submit hands in the blocked operands of C ← C + A·B and returns a
// *Job handle with Wait, Cancel, Done and Status. Every layer underneath is
// context-aware: cancelling a job's context (or calling Job.Cancel) aborts
// queued work before it leases anything and interrupts running work
// mid-transfer — in-process paced transfers wake from their modeled sleeps,
// distributed masters slam deadlines on in-flight socket I/O, and the
// mmserve client protocol carries a cancel frame so a daemon-side job is
// dequeued or its lease aborted without touching other jobs' leases.
//
// Whatever the runtime, a correct execution updates every C block through
// the same ascending-k kernel sequence, so the computed C is
// bitwise-identical across all of them.
//
//	sess, err := matmul.Open(ctx, matmul.WithAlgorithm("Het"))
//	job, err := sess.Submit(ctx, a, b, c)   // C ← C + A·B, in place
//	err = job.Wait(ctx)
//
// The internal packages (engine, net, serve, sched, sim) remain the
// implementation; their entry points are kept for compatibility but new
// callers should come in through this package.
package matmul

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/coded"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Matrix is the blocked operand type of the facade: a Rows×Cols grid of
// q×q element blocks. It aliases the engine's internal block matrix, so a
// Session-computed C can be compared bitwise against any internal runtime.
type Matrix = matrix.BlockMatrix

// Worker is one worker's platform description: link cost C, compute cost W,
// memory capacity M in blocks (the paper's c_i, w_i, m_i).
type Worker = platform.Worker

// NewMatrix allocates a rows×cols blocked matrix with block edge q.
func NewMatrix(rows, cols, q int) *Matrix { return matrix.NewBlockMatrix(rows, cols, q) }

// Trace is a recorded execution timeline of one job: per-worker transfer and
// compute spans on a common clock, in the shape the repository's simulator
// and Gantt tooling already speak. Job.Trace returns one for jobs that ran
// in this process, and Trace.WriteChromeTrace renders it as Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev) or about:tracing.
type Trace = trace.Trace

// Multiply computes the serial reference product C ← C + A·B, the oracle a
// Session's result can be verified against (within floating-point
// reordering tolerance; Session results are bitwise-reproducible among
// themselves, not against the serial order).
func Multiply(c, a, b *Matrix) error { return matrix.Multiply(c, a, b) }

// schedulers maps the public algorithm names onto the paper's scheduling
// algorithms.
var schedulers = map[string]sched.Scheduler{
	"hom": sched.Hom{}, "homi": sched.HomI{}, "het": sched.Het{},
	"orroml": sched.ORROML{}, "ommoml": sched.OMMOML{}, "oddoml": sched.ODDOML{}, "bmm": sched.BMM{},
}

// Algorithms lists the accepted WithAlgorithm names.
func Algorithms() []string {
	return []string{"Hom", "HomI", "Het", "ORROML", "OMMOML", "ODDOML", "BMM"}
}

// config is the resolved option set of one Session.
type config struct {
	rt          Runtime
	scheduler   sched.Scheduler
	algorithm   string
	pipelined   bool
	onePort     bool
	procs       int
	platform    *platform.Platform
	pacing      time.Duration
	shutdown    bool // Distributed: Close shuts worker daemons down instead of releasing them
	adaptive    bool
	drift       float64
	panelCache  bool
	redundancy  coded.Mode
	redundancyR int

	// explicit-set markers, so runtimes can reject options that do not apply
	// to them instead of silently ignoring them.
	setAlgorithm, setPipelined, setOnePort, setProcs, setPlatform, setPacing, setShutdown, setAdaptive, setPanelCache, setRedundancy bool
}

// redundant reports whether this session's jobs run through the k-of-n gate.
func (c *config) redundant() bool {
	return c.redundancy != "" && c.redundancy != coded.ModeOff
}

// Option configures a Session at Open.
type Option func(*config) error

// WithRuntime selects the execution runtime. Default: InProcess().
func WithRuntime(rt Runtime) Option {
	return func(c *config) error {
		if rt == nil {
			return fmt.Errorf("matmul: nil runtime")
		}
		c.rt = rt
		return nil
	}
}

// WithAlgorithm picks the scheduling algorithm by name (see Algorithms).
// Default: Het, the paper's best-of-eight heterogeneous meta-algorithm.
func WithAlgorithm(name string) Option {
	return func(c *config) error {
		s, ok := schedulers[strings.ToLower(name)]
		if !ok {
			return fmt.Errorf("matmul: unknown algorithm %q (have %s)", name, strings.Join(Algorithms(), ", "))
		}
		c.scheduler, c.algorithm, c.setAlgorithm = s, name, true
		return nil
	}
}

// WithPipelined selects between the concurrent per-worker executor (true,
// the default) and the strictly sequential op loop. C is bitwise-identical
// either way.
func WithPipelined(on bool) Option {
	return func(c *config) error {
		c.pipelined, c.setPipelined = on, true
		return nil
	}
}

// WithOnePort serializes transfer slots across workers, restoring the
// paper's one-port master: transfers overlap compute but never each other.
// Meaningful with WithPacing in-process, and on the send side distributed.
func WithOnePort(on bool) Option {
	return func(c *config) error {
		c.onePort, c.setOnePort = on, true
		return nil
	}
}

// WithProcs bounds the goroutines each in-process worker spends on one
// installment's block updates (≤1: sequential). The per-block arithmetic
// order — and therefore the result — is unchanged.
func WithProcs(n int) Option {
	return func(c *config) error {
		c.procs, c.setProcs = n, true
		return nil
	}
}

// WithPlatform sets the modeled star platform (c_i, w_i, m_i per worker)
// that scheduling plans against. In-process it defaults to a small
// heterogeneous testbed; distributed it defaults to one homogeneous slot
// per dialed worker and, when given, must describe exactly the dialed
// workers in order.
func WithPlatform(workers ...Worker) Option {
	return func(c *config) error {
		pl, err := platform.New(workers...)
		if err != nil {
			return err
		}
		c.platform, c.setPlatform = pl, true
		return nil
	}
}

// WithPacing makes every in-process transfer cost modeled wall-clock time:
// sending X blocks to worker i sleeps X·c_i·d. Zero disables (full-speed
// verification runs).
func WithPacing(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("matmul: negative pacing %v", d)
		}
		c.pacing, c.setPacing = d, true
		return nil
	}
}

// WithWorkerShutdown makes Close of a Distributed session shut the worker
// daemons down instead of releasing their sessions back to their accept
// loops. One-shot drivers (mmrun) want this; services and tests do not.
// Only the Distributed runtime accepts it.
func WithWorkerShutdown() Option {
	return func(c *config) error {
		c.shutdown, c.setShutdown = true, true
		return nil
	}
}

// WithAdaptive turns on the adaptive (elastic) runtime for InProcess and
// Distributed sessions: the session maintains live per-worker throughput
// estimates (EWMA over every observed transfer and compute, seeded from the
// declared platform), jobs run through the elastic executor — un-dispatched
// chunks are re-planned onto the live estimates whenever a worker departs,
// a worker joins (Session.AddWorker, Distributed only), or an estimate
// drifts past the threshold — and Session.Stats exposes the estimates. The
// computed C stays bitwise-identical under every re-plan. drift sets the
// re-plan threshold as a relative estimate change; 0 selects the engine
// default (0.5), negative disables drift re-planning while keeping
// estimates, joins and departures.
//
// A Remote session rejects this option: elasticity lives daemon-side there
// (mmserve -adaptive, mmworker -join).
func WithAdaptive(drift float64) Option {
	return func(c *config) error {
		c.adaptive, c.drift, c.setAdaptive = true, drift, true
		return nil
	}
}

// WithPanelCache toggles operand-panel caching on runtimes with a wire
// (default on). A Distributed session then opens a cache epoch per job —
// workers that kept a submitted operand's panels from an earlier job skip
// those transfers — and a Remote session ships the operands' digests with
// each submission so the daemon can do the same and route jobs by operand
// affinity. Workers without a cache (mmworker -cache-mb 0) degrade per link
// via the handshake; the computed C is bitwise-identical either way. The
// InProcess runtime rejects the option: its workers share the process
// memory, so there is nothing to cache.
func WithPanelCache(on bool) Option {
	return func(c *config) error {
		c.panelCache, c.setPanelCache = on, true
		return nil
	}
}

// WithRedundancy turns on proactive straggler mitigation for InProcess and
// Distributed sessions: each job's plan gains r redundant work units per
// wave and runs through the engine's k-of-n completion gate, so a stalled
// worker is absorbed the moment enough of the dispatched units finish — no
// heartbeat timeout on the completion path. mode selects the strategy:
//
//   - "replicated" duplicates the hottest chunk jobs onto other workers;
//     first result wins, laggards are wire-cancelled, and every committed
//     result is a verbatim systematic one, so C stays bitwise-identical to
//     the unredundant run.
//   - "coded" adds systematic MDS parity units over groups of compatible
//     jobs; straggler-free runs still commit systematic results verbatim
//     (bitwise-identical C), and a decode reconstructs only the members
//     that never returned.
//   - "off" disables (the default).
//
// r ≤ 0 defaults to 1. On an adaptive session (WithAdaptive) the measured
// estimates price redundant placement; the gate executor subsumes the
// elastic one for redundant jobs, so drift re-planning is idle while they
// run. A Remote session rejects this option: redundancy lives daemon-side
// there (mmserve -redundancy).
func WithRedundancy(mode string, r int) Option {
	return func(c *config) error {
		m, err := coded.ParseMode(mode)
		if err != nil {
			return fmt.Errorf("matmul: %w", err)
		}
		if r <= 0 {
			r = 1
		}
		c.redundancy, c.redundancyR, c.setRedundancy = m, r, true
		return nil
	}
}

// Session is an open connection to one runtime: the single way in. A
// Session is safe for concurrent Submits; jobs on an InProcess or Remote
// session run concurrently, a Distributed session executes them one at a
// time over its shared worker links.
type Session struct {
	cfg config
	rts runtimeSession

	ctx    context.Context // session-lifetime context, derived from Open's
	cancel context.CancelFunc

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // outstanding job goroutines
}

// Open validates the options, opens the selected runtime (dialing its
// workers or daemon), and returns the Session. ctx governs both the open
// and the session's lifetime: cancelling it cancels every outstanding job,
// so wiring a signal context here gives SIGINT-triggered graceful
// cancellation end to end. Close the session when done.
func Open(ctx context.Context, opts ...Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := config{
		rt:         InProcess(),
		scheduler:  sched.Het{},
		algorithm:  "Het",
		pipelined:  true,
		panelCache: true,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.adaptive && cfg.setPipelined && !cfg.pipelined {
		// The elastic executor is inherently concurrent; honoring a request
		// for the strictly sequential op loop would silently drop one of the
		// two options.
		return nil, fmt.Errorf("matmul: WithAdaptive requires the concurrent executor; drop WithPipelined(false)")
	}
	if cfg.redundant() && cfg.setPipelined && !cfg.pipelined {
		// The k-of-n gate races concurrent units; the sequential op loop has
		// nothing to race.
		return nil, fmt.Errorf("matmul: WithRedundancy requires the concurrent executor; drop WithPipelined(false)")
	}
	rts, err := cfg.rt.open(ctx, &cfg)
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	return &Session{cfg: cfg, rts: rts, ctx: sctx, cancel: cancel}, nil
}

// SubmitOption configures one submission (Session options configure the
// whole session; see WithClass).
type SubmitOption func(*submitConfig) error

// submitConfig is the resolved per-submission option set.
type submitConfig struct {
	class serve.JobClass
}

// Classes lists the accepted WithClass names, in priority order.
func Classes() []string { return []string{"interactive", "standard", "batch"} }

// WithClass declares the job's SLO class ("interactive", "standard" or
// "batch"; default standard). On a Remote session the class rides the
// submission frame to the mmserve daemon, where the priority queue policy
// dispatches interactive jobs first and token-bucket admission buckets by
// class (see mmserve -queue and -admission). The other runtimes have no
// multi-job queue to reorder: the class is recorded on the Job handle
// (Status().Class) and otherwise inert.
func WithClass(name string) SubmitOption {
	return func(sc *submitConfig) error {
		class, err := serve.ParseClass(name)
		if err != nil {
			return fmt.Errorf("matmul: unknown job class %q (have %s)", name, strings.Join(Classes(), ", "))
		}
		sc.class = class
		return nil
	}
}

// Submit admits one product C ← C + A·B (all matrices blocked with the same
// edge q; C is updated in place) and returns its Job handle immediately.
// The A and B positions each take a *Matrix or an installed *Operand,
// interchangeably: a plain matrix is wrapped in a transient handle, an
// installed one reuses its memoized panel digests — the cheap way to submit
// the same operand many times (see Session.Install). Per-job options follow
// C (WithClass declares the SLO class). The job is canceled
// when ctx ends, when Job.Cancel is called, or when the session closes —
// whichever comes first. Waiting is separate: use Job.Wait or Job.Done.
func (s *Session) Submit(ctx context.Context, a, b any, c *Matrix, opts ...SubmitOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var sc submitConfig
	for _, opt := range opts {
		if err := opt(&sc); err != nil {
			return nil, err
		}
	}
	ao, aDone, err := s.operandOf(a, "A")
	if err != nil {
		return nil, err
	}
	bo, bDone, err := s.operandOf(b, "B")
	if err != nil {
		aDone()
		return nil, err
	}
	release := func() { aDone(); bDone() }
	am, bm := ao.mat, bo.mat
	if c == nil {
		release()
		return nil, fmt.Errorf("matmul: submit needs A, B and C")
	}
	if am.Q != bm.Q || am.Q != c.Q {
		release()
		return nil, fmt.Errorf("matmul: block edges differ: A q=%d, B q=%d, C q=%d", am.Q, bm.Q, c.Q)
	}
	if am.Rows != c.Rows || bm.Cols != c.Cols || bm.Rows != am.Cols {
		release()
		return nil, fmt.Errorf("matmul: shape mismatch A %dx%d, B %dx%d, C %dx%d",
			am.Rows, am.Cols, bm.Rows, bm.Cols, c.Rows, c.Cols)
	}
	inst := sched.Instance{R: c.Rows, S: c.Cols, T: am.Cols}
	if err := inst.Validate(); err != nil {
		release()
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		return nil, fmt.Errorf("matmul: session is closed")
	}
	s.wg.Add(1)
	s.mu.Unlock()

	jctx, jcancel := context.WithCancel(ctx)
	unlink := context.AfterFunc(s.ctx, jcancel) // session close/cancel fans out
	j := &Job{cancel: jcancel, done: make(chan struct{}), class: sc.class}
	if _, ok := s.rts.(localTracer); ok {
		// Runs that execute in this process record their timeline as they go;
		// Job.Trace exposes it once the job is terminal. Remote jobs execute
		// daemon-side — recording lives there (mmserve -trace-dir).
		j.rec = trace.NewRecorder(s.cfg.algorithm)
		jctx = trace.NewContext(jctx, j.rec)
	}
	go func() {
		defer s.wg.Done()
		defer unlink()
		defer release()
		err := s.rts.run(jctx, j, ao, bo, c)
		jcancel()
		j.finish(err)
	}()
	return j, nil
}

// WorkerStats is one worker's row in a session's live statistics: the
// declared platform spec next to the measured estimates.
type WorkerStats struct {
	Name string
	// Kernel is the block-update kernel the worker computes with (all
	// kernels produce bitwise-identical C): in-process workers share the
	// session's kernel; distributed/remote workers report their own,
	// empty if the daemon predates kernel reporting.
	Kernel string
	Spec   Worker // declared c_i, w_i, m_i
	// CPerBlock and WPerUpdate are the measured link and compute costs (EWMA
	// over the session's observed transfers and computes); zero until the
	// worker's first observation.
	CPerBlock  time.Duration
	WPerUpdate time.Duration
	Samples    int // observations folded into the estimates
	// Panel-cache effectiveness on caching runtimes: handshake hit/miss
	// counts and operand bytes shipped versus skipped over this worker's
	// link, plus the panel bytes believed resident in its cache.
	CacheHits       int64
	CacheMisses     int64
	CacheSentBytes  int64
	CacheSavedBytes int64
	ResidentPanels  int
	ResidentBytes   int64
}

// PanelCacheStats aggregates operand-panel cache effectiveness across a
// session's workers: how many handshake probes hit, and how many operand
// bytes residency kept off the wire versus how many still moved.
type PanelCacheStats struct {
	PanelHits, PanelMisses  int64
	ASentBytes, ASavedBytes int64
	BSentBytes, BSavedBytes int64
	ResidentBytes           int64 // panel bytes believed resident fleet-wide
}

// SessionStats is a session's live view of its fleet.
type SessionStats struct {
	// Kernel names the block-update kernel of the process applying updates
	// locally — this process for InProcess and Distributed masters, the
	// daemon for Remote. Per-worker kernels sit in the Workers rows.
	Kernel   string
	Adaptive bool // estimates maintained and used for re-planning
	// Replans counts elastic re-plans (join/depart/drift) across the
	// session's jobs. A Remote session reports the *daemon's* totals — its
	// estimates and re-plans span every client's jobs, which is exactly
	// what makes them useful.
	Replans int
	// PanelCache totals operand-panel caching (nil when the runtime does
	// not cache: InProcess, WithPanelCache(false), or a non-caching
	// daemon). Remote reports the daemon's fleet-wide totals.
	PanelCache *PanelCacheStats
	// Redundancy names the k-of-n gate mode when proactive straggler
	// mitigation is on ("replicated" or "coded"; empty when off). Remote
	// reports the daemon's configured mode.
	Redundancy string
	Workers    []WorkerStats
}

// statser is implemented by runtime sessions that can report SessionStats.
type statser interface {
	stats(ctx context.Context) (SessionStats, error)
}

// workerAdder is implemented by runtime sessions that accept workers joining
// after Open.
type workerAdder interface {
	addWorker(ctx context.Context, addr string, spec Worker) (int, error)
}

// Stats reports the session's per-worker statistics: the declared platform
// and — on an adaptive session (WithAdaptive), or a Remote session whose
// daemon runs adaptive — the live measured throughput estimates. On Remote
// the snapshot is fetched from the daemon.
func (s *Session) Stats() (SessionStats, error) {
	st, ok := s.rts.(statser)
	if !ok {
		return SessionStats{}, fmt.Errorf("matmul: this runtime reports no statistics")
	}
	ctx, cancel := context.WithTimeout(s.ctx, 30*time.Second)
	defer cancel()
	return st.stats(ctx)
}

// AddWorker joins one more mmworker daemon to a Distributed session after
// Open — the elastic half of fleet membership. The worker becomes part of
// the session's platform for every subsequent job, and on an adaptive
// session (WithAdaptive) it is also folded into the job currently running:
// the elastic executor re-plans un-dispatched chunks onto it. spec is the
// worker's declared platform description (at most one; default c=1, w=1,
// m=60). Returns the new worker's index.
//
// InProcess sessions reject AddWorker (goroutine workers are fixed at
// Open); Remote sessions reject it too — register with the daemon instead
// (mmworker -join).
func (s *Session) AddWorker(ctx context.Context, addr string, spec ...Worker) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(spec) > 1 {
		return 0, fmt.Errorf("matmul: AddWorker takes at most one spec")
	}
	w := Worker{C: 1, W: 1, M: 60}
	if len(spec) == 1 {
		w = spec[0]
	}
	ad, ok := s.rts.(workerAdder)
	if !ok {
		return 0, fmt.Errorf("matmul: this runtime cannot add workers after Open (Distributed sessions can; an mmserve fleet grows via mmworker -join)")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("matmul: session is closed")
	}
	s.mu.Unlock()
	return ad.addWorker(ctx, addr, w)
}

// Close cancels every outstanding job, waits for them to unwind, and closes
// the runtime (releasing distributed worker sessions back to their daemons,
// unless WithWorkerShutdown ends them). Idempotent; safe after a SIGINT
// cancellation has already torn the jobs down.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return s.rts.close()
}
