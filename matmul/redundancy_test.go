package matmul

import (
	"context"
	"strings"
	"testing"
)

// TestWithRedundancyInProcessMatchesPlain runs the same product with the
// k-of-n gate on and off through the in-process runtime. Replicated mode must
// stay bitwise-identical (every commit is systematic); coded mode is bitwise
// except for the rare end-of-run race where a parity decode beats a healthy
// copy, so it gets solver tolerance.
func TestWithRedundancyInProcessMatchesPlain(t *testing.T) {
	const r, s, tt, q, seed = 6, 9, 4, 8, 43

	plain := func() *Matrix {
		sess, err := Open(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		a, b, c := seeded(t, r, s, tt, q, seed)
		job, err := sess.Submit(context.Background(), a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return c
	}()

	for _, mode := range []string{"replicated", "coded"} {
		t.Run(mode, func(t *testing.T) {
			sess, err := Open(context.Background(), WithRedundancy(mode, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			if st, err := sess.Stats(); err != nil || st.Redundancy != mode {
				t.Errorf("session stats: %+v, %v; want redundancy %q", st, err, mode)
			}
			a, b, c := seeded(t, r, s, tt, q, seed)
			job, err := sess.Submit(context.Background(), a, b, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			d := c.MaxAbsDiff(plain)
			if mode == "replicated" && d != 0 {
				t.Errorf("replicated C differs from plain session by %g (want bitwise equal)", d)
			}
			if d > 1e-9 {
				t.Errorf("%s C differs from plain session by %g", mode, d)
			}
		})
	}
}

// TestWithRedundancyDistributed: the gate must also hold over TCP workers.
func TestWithRedundancyDistributed(t *testing.T) {
	const r, s, tt, q, seed = 6, 9, 4, 8, 44
	addrs := startWorkers(t, 2, nil)
	sess, err := Open(context.Background(),
		WithRuntime(Distributed(addrs...)), WithRedundancy("replicated", 1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seeded(t, r, s, tt, q, seed)
	job, err := sess.Submit(context.Background(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := engineReference(t, r, s, tt, q, seed)
	if d := c.MaxAbsDiff(want); d != 0 {
		t.Errorf("distributed replicated C differs from reference by %g (want bitwise equal)", d)
	}
}

// TestWithRedundancyValidation pins the option's rejection surface.
func TestWithRedundancyValidation(t *testing.T) {
	if _, err := Open(context.Background(), WithRedundancy("bogus", 1)); err == nil {
		t.Error("bogus redundancy mode accepted")
	}
	if _, err := Open(context.Background(), WithRedundancy("replicated", 1), WithPipelined(false)); err == nil {
		t.Error("redundancy over the sequential executor accepted")
	}
	daemon := startDaemon(t, 2, nil)
	_, err := Open(context.Background(), WithRuntime(Remote(daemon)), WithRedundancy("replicated", 1))
	if err == nil {
		t.Fatal("WithRedundancy on the Remote runtime accepted")
	}
	if !strings.Contains(err.Error(), "mmserve") {
		t.Errorf("remote rejection %q does not point at the daemon's -redundancy flag", err)
	}
}

// TestRemoteJobTraceFetched: a remote job's trace is not recorded in this
// process — Trace() must fetch it from the daemon after completion, and keep
// returning it (memoized) afterwards.
func TestRemoteJobTraceFetched(t *testing.T) {
	daemon := startDaemon(t, 2, nil)
	sess, err := Open(context.Background(), WithRuntime(Remote(daemon)))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seeded(t, 6, 9, 4, 8, 45)
	job, err := sess.Submit(context.Background(), a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr := job.Trace()
	if tr == nil {
		t.Fatal("remote job trace unavailable after Wait")
	}
	if len(tr.Transfers) == 0 {
		t.Error("fetched trace has no transfers")
	}
	if again := job.Trace(); again != tr {
		t.Error("second Trace() call refetched instead of memoizing")
	}
}
