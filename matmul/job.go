package matmul

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// JobState is a Job's lifecycle state as seen through the facade.
type JobState uint8

const (
	// JobRunning: submitted and not yet terminal (on a Remote session this
	// covers daemon-side queueing too — the client cannot tell a queued job
	// from a running one without polling the daemon's stats).
	JobRunning JobState = iota
	// JobDone: completed; C holds the product.
	JobDone
	// JobFailed: ended with an error other than cancellation — execution
	// errors, and expired deadlines too: a submit context that merely timed
	// out reports JobFailed with an error wrapping context.DeadlineExceeded,
	// so "we stopped it" (canceled) stays distinguishable from "it ran out
	// of budget or broke" (failed).
	JobFailed
	// JobCanceled: deliberately stopped — by Cancel, a cancelled submit
	// context, or session close. Err wraps context.Canceled.
	JobCanceled
)

func (s JobState) String() string {
	switch s {
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// JobStatus is a Job's externally visible state.
type JobStatus struct {
	State JobState
	// Class is the job's SLO class name as declared at Submit (WithClass):
	// "interactive", "standard" or "batch".
	Class string
	// Err is the terminal error (nil while running and after success). A
	// canceled job's Err wraps context.Canceled.
	Err error
	// RemoteID is the daemon-side job id of a Remote submission, once the
	// daemon has accepted it (0 before that, and always 0 on the other
	// runtimes).
	RemoteID uint64
}

// Job is one submitted product's handle.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}
	rec    *trace.Recorder // non-nil when the runtime records in-process
	class  serve.JobClass  // SLO class declared at Submit; set before run starts

	mu         sync.Mutex
	state      JobState
	err        error
	remoteID   uint64
	traceFetch func(ctx context.Context) (*trace.Trace, error) // Remote: daemon-side timeline
	traced     *trace.Trace                                    // memoized successful fetch
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel asks the job to stop: a queued job is dequeued before it leases
// anything, a running one is aborted mid-transfer. Cancel returns
// immediately; observe completion through Wait or Done. Cancelling a
// terminal job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// Wait blocks until the job is terminal and returns its error (nil on
// success — C has been updated in place). If ctx ends first, Wait returns
// ctx.Err() and the job keeps running: abandoning a wait is not a cancel.
func (j *Job) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Trace returns the job's recorded execution timeline: one span per
// transfer and compute, keyed by worker, on a clock starting at the job's
// submission. In-process and Distributed jobs record as they run: calling
// Trace before the job is terminal returns the spans recorded so far, and
// the full timeline is available after Wait. A Remote job executes — and
// records — daemon-side; Trace fetches the daemon's recording over the
// client protocol, so it is nil until the job is terminal there (and on
// daemons predating trace fetch), and the fetched timeline is memoized.
// Render the result with Trace.WriteChromeTrace for Perfetto, or inspect
// the spans directly.
func (j *Job) Trace() *Trace {
	if j.rec != nil {
		return j.rec.Trace()
	}
	j.mu.Lock()
	fetch, cached := j.traceFetch, j.traced
	j.mu.Unlock()
	if cached != nil {
		return cached
	}
	if fetch == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tr, err := fetch(ctx)
	if err != nil || tr == nil {
		return nil
	}
	j.mu.Lock()
	j.traced = tr
	j.mu.Unlock()
	return tr
}

// Status snapshots the job's state without blocking.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{State: j.state, Class: j.class.String(), Err: j.err, RemoteID: j.remoteID}
}

// setRemoteID records the daemon-side id of a Remote submission.
func (j *Job) setRemoteID(id uint64) {
	j.mu.Lock()
	j.remoteID = id
	j.mu.Unlock()
}

// setTraceFetch installs the daemon-side timeline fetcher of a Remote
// submission, once its job id is known.
func (j *Job) setTraceFetch(fetch func(ctx context.Context) (*trace.Trace, error)) {
	j.mu.Lock()
	j.traceFetch = fetch
	j.mu.Unlock()
}

// finish moves the job to its terminal state. Cancellation wins over the
// secondary errors an abort provokes on the way down.
func (j *Job) finish(err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobDone
	case errors.Is(err, context.Canceled):
		j.state, j.err = JobCanceled, err
	default:
		j.state, j.err = JobFailed, err
	}
	j.mu.Unlock()
	close(j.done)
}
