// Lufactor demonstrates the LU extension (companion report): it factors a
// block matrix with the sequential blocked algorithm and with the
// master-worker trailing-update scheme, verifies L·U = A, and simulates the
// makespan of the distributed version on a heterogeneous platform for
// several worker counts.
//
//	go run ./examples/lufactor
package main

import (
	"fmt"
	"log"

	"repro/internal/lu"
	"repro/internal/platform"
)

func main() {
	n, q := 6, 8
	a := lu.NewDiagonallyDominant(n, q, 7)
	orig := a.Clone()

	if err := lu.FactorParallel(a, 4); err != nil {
		log.Fatal(err)
	}
	back, err := lu.Reconstruct(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored %d×%d blocks (q=%d); max |L·U − A| = %.3g\n",
		n, n, q, back.MaxAbsDiff(orig))

	fmt.Println("\nsimulated master-worker LU makespan (n = 40 blocks, panel cost 0.5):")
	for _, p := range []int{1, 2, 4, 8} {
		pl := platform.Homogeneous(p, 0.4, 1, 320)
		total, _, err := lu.SimulateMakespan(pl, 40, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d workers: %10.0f time units\n", p, total)
	}
	fmt.Println("\nthe trailing updates parallelize; the serial panel factorizations")
	fmt.Println("bound the speedup, as the companion report's analysis predicts")
}
