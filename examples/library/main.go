// The facade in one process: the same product submitted through all three
// matmul runtimes — InProcess goroutine workers, Distributed loopback
// mmworker daemons, and Remote via a loopback mmserve scheduling daemon —
// each C asserted bitwise-identical to the others, followed by a live
// cancellation: a paced job is cancelled mid-transfer and must come back
// promptly with context.Canceled instead of riding out the modeled link
// time.
//
//	go run ./examples/library
//
// This is the embedding story: one import (repro/matmul), one Session API,
// any runtime behind it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	stdnet "net"
	"time"

	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/matmul"
)

func main() {
	ctx := context.Background()

	// Loopback infrastructure: four mmworker serve loops; two are dialed
	// directly by the Distributed session, two form an mmserve daemon's
	// fleet for the Remote session.
	var workerAddrs []string
	for i := 0; i < 4; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go mmnet.Serve(ln, fmt.Sprintf("worker-%d", i+1), mmnet.WorkerOptions{Heartbeat: 100 * time.Millisecond})
	}
	fleet, err := serve.NewFleet(workerAddrs[2:], platform.Homogeneous(2, 1, 1, 60).Workers, serve.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	srv := serve.NewServer(fleet, serve.Config{})
	defer srv.Close()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go srv.ListenAndServe(ln)

	// One seeded product, three runtimes, one result.
	const r, s, t, q, seed = 6, 9, 4, 16, 7
	runtimes := []struct {
		name string
		opts []matmul.Option
	}{
		{"in-process", nil},
		{"distributed", []matmul.Option{matmul.WithRuntime(matmul.Distributed(workerAddrs[:2]...))}},
		{"mmserve", []matmul.Option{matmul.WithRuntime(matmul.Remote(ln.Addr().String()))}},
	}
	var results []*matmul.Matrix
	for _, rt := range runtimes {
		sess, err := matmul.Open(ctx, rt.opts...)
		if err != nil {
			log.Fatalf("%s: open: %v", rt.name, err)
		}
		a, b, c := seededProduct(r, s, t, q, seed)
		job, err := sess.Submit(ctx, a, b, c)
		if err != nil {
			log.Fatalf("%s: submit: %v", rt.name, err)
		}
		if err := job.Wait(ctx); err != nil {
			log.Fatalf("%s: %v", rt.name, err)
		}
		if err := sess.Close(); err != nil {
			log.Fatalf("%s: close: %v", rt.name, err)
		}
		fmt.Printf("%-12s C computed (%v)\n", rt.name, job.Status().State)
		results = append(results, c)
	}
	for i := 1; i < len(results); i++ {
		if d := results[i].MaxAbsDiff(results[0]); d != 0 {
			log.Fatalf("%s C differs from in-process C by %g (want bitwise equality)", runtimes[i].name, d)
		}
	}
	fmt.Println("all three runtimes bitwise-identical ✓")

	// Cancellation: pace transfers at 1ms per block×unit so the plan would
	// run for seconds, then cancel mid-flight.
	sess, err := matmul.Open(ctx, matmul.WithPacing(time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	a, b, c := seededProduct(8, 16, 6, q, seed)
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	go func() {
		time.Sleep(50 * time.Millisecond)
		job.Cancel()
	}()
	err = job.Wait(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("cancelled job returned %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		log.Fatalf("cancel took %v, want a prompt abort", elapsed)
	}
	fmt.Printf("paced job cancelled mid-transfer in %v (state %v) ✓\n", elapsed.Round(time.Millisecond), job.Status().State)
}

// seededProduct builds the A, B, C operands for one job.
func seededProduct(r, s, t, q int, seed int64) (a, b, c *matmul.Matrix) {
	a = matmul.NewMatrix(r, t, q)
	b = matmul.NewMatrix(t, s, q)
	c = matmul.NewMatrix(r, s, q)
	fill := func(m *matmul.Matrix, off float64) {
		for i := 0; i < m.ElemRows(); i++ {
			for j := 0; j < m.ElemCols(); j++ {
				m.Set(i, j, off+float64((i*31+j*17+int(seed))%13)/7)
			}
		}
	}
	fill(a, 0.25)
	fill(b, 0.5)
	fill(c, 0.75)
	return
}
