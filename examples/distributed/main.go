// Distributed run on a single machine: two worker endpoints on loopback TCP,
// a master that schedules the product with the heterogeneous algorithm and
// replays the plan over the wire, and a five-way verification — the
// distributed C of BOTH low-level executors (the sequential op loop and the
// pipelined per-worker dispatcher) must equal the in-process engine's C
// bitwise (same per-chunk operation order, same kernel) and match the serial
// product, and the public facade (a matmul.Session on the Distributed
// runtime, the way library callers drive these workers) must reproduce the
// same bits over the same daemons.
//
//	go run ./examples/distributed
//
// Against real machines the worker side is cmd/mmworker and the master side
// is cmd/mmrun -distributed; this example wires the same endpoints in one
// process so it can run anywhere (including CI) without orchestration.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	stdnet "net"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/matmul"
)

func main() {
	// Two loopback workers, each a goroutine running the exact serve loop
	// cmd/mmworker runs per connection.
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		name := fmt.Sprintf("worker-%d", i+1)
		addrs = append(addrs, ln.Addr().String())
		go mmnet.Serve(ln, name, mmnet.WorkerOptions{Heartbeat: 200 * time.Millisecond})
	}

	// Schedule C (6×12 blocks) += A (6×4) · B (4×12) for two workers.
	pl := platform.Homogeneous(len(addrs), 1, 1, 60)
	inst := sched.Instance{R: 6, S: 12, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s: %d transfers for %d chunk jobs\n",
		res.Algorithm, len(res.Trace.Transfers), countChunks(res))

	q := 8
	rng := rand.New(rand.NewSource(1))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	cNet := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	cNet.FillRandom(rng)
	cEng := cNet.Clone()
	cPipe := cNet.Clone()
	cLib := cNet.Clone()
	want := cNet.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		log.Fatal(err)
	}

	// In-process execution of the same plan, for the bitwise comparison.
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, res.Plan(), a, b, cEng); err != nil {
		log.Fatal(err)
	}

	// Distributed execution over TCP: once with the sequential executor,
	// once with the pipelined per-worker dispatcher, on the same sessions.
	m, err := mmnet.Dial(addrs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master connected to %v\n", m.WorkerNames())
	start := time.Now()
	if err := m.Run(inst.T, res.Plan(), a, b, cNet); err != nil {
		log.Fatal(err)
	}
	seqElapsed := time.Since(start)
	start = time.Now()
	if err := m.RunPipelined(inst.T, res.Plan(), a, b, cPipe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed runs finished: sequential %v, pipelined %v\n", seqElapsed, time.Since(start))
	// Release (not Shutdown): the worker daemons keep serving, so the facade
	// session below re-dials the very same endpoints.
	if err := m.Release(); err != nil {
		log.Fatal(err)
	}

	// The public way in: a matmul.Session on the Distributed runtime over
	// the same daemons (homogeneous platform, same algorithm — therefore the
	// same plan, and in any case the same bits). Its Close shuts the worker
	// daemons down, ending the example cleanly.
	sess, err := matmul.Open(context.Background(),
		matmul.WithRuntime(matmul.Distributed(addrs...)),
		matmul.WithAlgorithm("Het"),
		matmul.WithWorkerShutdown(),
	)
	if err != nil {
		log.Fatal(err)
	}
	job, err := sess.Submit(context.Background(), a, b, cLib)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		log.Fatal(err)
	}

	if d := cNet.MaxAbsDiff(cEng); d != 0 {
		log.Fatalf("distributed C deviates from in-process C by %g (want bitwise equality)", d)
	}
	if d := cPipe.MaxAbsDiff(cEng); d != 0 {
		log.Fatalf("pipelined distributed C deviates from in-process C by %g (want bitwise equality)", d)
	}
	if d := cLib.MaxAbsDiff(cEng); d != 0 {
		log.Fatalf("facade C deviates from in-process C by %g (want bitwise equality)", d)
	}
	if d := cNet.MaxAbsDiff(want); d > 1e-9 {
		log.Fatalf("distributed C deviates from serial product by %g", d)
	}
	fmt.Println("verification OK: sequential ≡ pipelined ≡ facade ≡ in-process C, C = C₀ + A·B")
}

func countChunks(res *sched.Result) int {
	n := 0
	for _, t := range res.Trace.Transfers {
		if t.Kind == trace.SendC {
			n++
		}
	}
	return n
}
