// Multi-job scheduling service on a single machine: a persistent 4-worker
// fleet, an mmserve daemon, and two products submitted concurrently over the
// client protocol. The daemon's resource selection gives each job a disjoint
// leased subset, both run at the same time, and each returned C must be
// bitwise-identical to the in-process engine's (any correct execution updates
// every C block through the same ascending-k kernel sequence, so the service
// may pick any subset it likes without changing a single bit).
//
// One worker is rigged to crash mid-job (abrupt connection close, as a
// killed process would). Its job fails over inside its own lease, the other
// job never notices, and the fleet re-dials the worker's still-running
// daemon afterwards — a third job then runs on the healed fleet: many jobs,
// one fleet, zero worker restarts.
//
//	go run ./examples/serve
//
// Against real machines the workers are cmd/mmworker daemons and the service
// is cmd/mmserve; this example wires the same endpoints in one process so it
// can run anywhere (including CI) without orchestration.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	stdnet "net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/matmul"
)

const crasher = 3 // worker index rigged to die mid-job

func main() {
	// Four loopback worker daemons running the exact cmd/mmworker serve
	// loop; the last one abruptly closes its connection after two
	// installments of every session — a crash the service must absorb.
	var workerAddrs []string
	for i := 0; i < 4; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		o := mmnet.WorkerOptions{Heartbeat: 100 * time.Millisecond}
		if i == crasher {
			o.CrashAfterInstalls = 2
		}
		workerAddrs = append(workerAddrs, ln.Addr().String())
		go mmnet.Serve(ln, fmt.Sprintf("worker-%d", i+1), o)
	}

	// The daemon: persistent fleet + job queue + client listener.
	fleet, err := serve.NewFleet(workerAddrs, platform.Homogeneous(4, 1, 1, 60).Workers, serve.FleetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	srv := serve.NewServer(fleet, serve.Config{MaxWorkersPerJob: 2})
	defer srv.Close()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go srv.ListenAndServe(ln)
	daemon := ln.Addr().String()
	fmt.Printf("mmserve daemon on %s over a persistent 4-worker fleet\n", daemon)

	// Two concurrent client submissions, big enough (~100ms each) that they
	// overlap. Job 2's lease will include the rigged worker; its failover
	// must not leak into job 1. A poller watches the daemon's stats so the
	// disjointness claim below is only asserted for jobs that really ran at
	// the same time.
	inst := sched.Instance{R: 6, S: 9, T: 4}
	q := 64
	var wg sync.WaitGroup
	results := make([]*matrix.BlockMatrix, 2)
	references := make([]*matrix.BlockMatrix, 2)
	stopPoll := make(chan struct{})
	sawBothRunning := make(chan bool, 1)
	go func() {
		both := false
		for {
			select {
			case <-stopPoll:
				sawBothRunning <- both
				return
			case <-time.After(2 * time.Millisecond):
				if st, err := serve.FetchStats(daemon, 5*time.Second); err == nil && st.Running >= 2 {
					both = true
				}
			}
		}
	}()
	// The submissions go through the public facade: one matmul.Session on
	// the Remote runtime multiplexes both concurrent jobs onto the daemon.
	sess, err := matmul.Open(context.Background(), matmul.WithRuntime(matmul.Remote(daemon)))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	for i := 0; i < 2; i++ {
		a, b, c := seededProduct(inst, q, int64(40+i))
		references[i] = engineReference(inst, q, int64(40+i))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := sess.Submit(context.Background(), a, b, c)
			if err != nil {
				log.Fatalf("submit %d: %v", i, err)
			}
			if err := job.Wait(context.Background()); err != nil {
				log.Fatalf("submit %d: %v", i, err)
			}
			fmt.Printf("job %d returned C\n", job.Status().RemoteID)
			results[i] = c
		}(i)
	}
	wg.Wait()
	close(stopPoll)
	overlapped := <-sawBothRunning

	for i, got := range results {
		if d := got.MaxAbsDiff(references[i]); d != 0 {
			log.Fatalf("job %d: serviced C differs from in-process engine C by %g (want bitwise equal)", i+1, d)
		}
	}
	fmt.Println("both concurrent jobs bitwise-equal to the in-process engine ✓")

	st, err := serve.FetchStats(daemon, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	var leases [][]int
	for _, j := range st.Jobs {
		fmt.Printf("job %d: %s on workers %v (%s, %.1fms)\n", j.ID, j.State, j.Workers, j.Algorithm, j.ElapsedMS)
		leases = append(leases, j.Workers)
	}
	disjoint := true
	seen := map[int]bool{}
	for _, lease := range leases {
		for _, w := range lease {
			if seen[w] {
				disjoint = false
			}
			seen[w] = true
		}
	}
	switch {
	case disjoint:
		// Disjoint leases are the concurrency proof: job 2 was planned on
		// the workers left over while job 1 held its lease.
		fmt.Println("concurrent leases disjoint ✓")
	case overlapped:
		// Shared workers while both jobs were observed running: isolation
		// is broken.
		log.Fatalf("concurrently running jobs shared a worker: %v", leases)
	default:
		// On a machine slow enough that job 1 finished before job 2 was
		// admitted, the service legitimately reuses the freed workers.
		fmt.Println("(jobs ran sequentially on this machine; lease reuse is expected)")
	}

	// The crashed worker's daemon never exited; a third job sees a healed
	// 4-worker fleet (the fleet re-dials before leasing).
	a, b, c := seededProduct(inst, q, 77)
	job, err := sess.Submit(context.Background(), a, b, c)
	if err != nil {
		log.Fatalf("post-crash job: %v", err)
	}
	if err := job.Wait(context.Background()); err != nil {
		log.Fatalf("post-crash job: %v", err)
	}
	if d := c.MaxAbsDiff(engineReference(inst, q, 77)); d != 0 {
		log.Fatalf("post-crash job %d: C differs by %g", job.Status().RemoteID, d)
	}
	fmt.Printf("job %d ran on the healed fleet, no worker process restarted ✓\n", job.Status().RemoteID)

	// Observability: the same daemon exposes /metrics, /healthz and pprof
	// behind an opt-in debug port (cmd/mmserve -debug-addr). Scrape it and
	// check the counters the jobs above just moved are really exported.
	scrapeDebugEndpoints(srv)
}

// scrapeDebugEndpoints brings up the obs debug mux, self-scrapes /healthz
// and /metrics, and fails loudly on a non-200 status or a missing metric
// family — the same check scripts/smoke-examples.sh keys on.
func scrapeDebugEndpoints(srv *serve.Server) {
	debugAddr, stopDebug, err := obs.ServeDebug("127.0.0.1:0", func() obs.Health {
		st := srv.Status()
		return obs.Health{OK: true, Payload: map[string]any{
			"component": "examples/serve", "version": obs.Version(),
			"queued": st.Queued, "running": st.Running,
		}}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stopDebug()

	resp, err := http.Get("http://" + debugAddr + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		log.Fatalf("/healthz returned %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != 200 {
		log.Fatalf("/metrics returned %d, want 200", resp.StatusCode)
	}
	for _, family := range []string{
		"mm_serve_jobs_submitted_total", // the three facade submissions
		"mm_serve_jobs_finished_total",  // ... all finished
		"mm_engine_chunks_total",        // chunks the daemon's leases dispatched
		"mm_net_sent_bytes_total",       // operand bytes that crossed the loopback wire
	} {
		if !strings.Contains(string(body), family) {
			log.Fatalf("/metrics is missing the %s family", family)
		}
	}
	fmt.Println("observability scrape OK: /healthz 200, /metrics families present ✓")
}

// seededProduct builds the A, B, C operands for one job.
func seededProduct(inst sched.Instance, q int, seed int64) (a, b, c *matrix.BlockMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a = matrix.NewBlockMatrix(inst.R, inst.T, q)
	b = matrix.NewBlockMatrix(inst.T, inst.S, q)
	c = matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	return a, b, c
}

// engineReference computes the same product through the in-process engine —
// the bitwise oracle the serviced results must match.
func engineReference(inst sched.Instance, q int, seed int64) *matrix.BlockMatrix {
	a, b, c := seededProduct(inst, q, seed)
	pl := platform.Homogeneous(2, 1, 1, 60)
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(engine.Config{Workers: pl.P(), T: inst.T}, res.Plan(), a, b, c); err != nil {
		log.Fatal(err)
	}
	return c
}
