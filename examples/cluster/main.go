// Cluster runs the full distributed stack on localhost: a TCP master and
// three TCP workers (in-process goroutines standing in for separate
// machines), scheduling with Het and verifying the distributed result
// against a local reference product.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	pl := platform.MustNew(
		platform.Worker{C: 1, W: 1, M: 60},
		platform.Worker{C: 2, W: 1.5, M: 40},
		platform.Worker{C: 1.5, W: 2, M: 96},
	)
	inst := sched.Instance{R: 8, S: 20, T: 6}
	q := 16

	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s (%s): %d transfers, workers %v\n",
		res.Algorithm, res.Note, len(res.Trace.Transfers), res.Enrolled)

	master, err := cluster.NewMaster("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < pl.P(); i++ {
		wg.Add(1)
		name := fmt.Sprintf("node%d", i+1)
		go func() {
			defer wg.Done()
			if err := cluster.Serve(master.Addr(), name); err != nil {
				log.Printf("worker %s: %v", name, err)
			}
		}()
	}
	if err := master.WaitForWorkers(pl.P(), 10*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up at %s with workers %v\n", master.Addr(), master.Workers())

	rng := rand.New(rand.NewSource(42))
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	b := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c.FillRandom(rng)
	want := c.Clone()
	if err := matrix.Multiply(want, a, b); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := master.Run(res.Plan(), inst.T, a, b, c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed product finished in %v\n", time.Since(start))
	if err := master.Shutdown(); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	if d := c.MaxAbsDiff(want); d > 1e-9 {
		log.Fatalf("verification FAILED: deviation %g", d)
	}
	fmt.Println("verification OK: distributed C matches the local reference")
}
