// Fullyhetero reproduces a miniature Figure 7: all seven algorithms compete
// on fully heterogeneous platforms (the structured ratio-2 and ratio-4
// platforms plus a few random ones), reporting relative cost and relative
// work exactly as the paper plots them.
//
//	go run ./examples/fullyhetero
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	type entry struct {
		label string
		pl    *platform.Platform
	}
	entries := []entry{
		{"ratio-2", platform.FullyHetero(2)},
		{"ratio-4", platform.FullyHetero(4)},
		{"random-1", platform.Random(8, 4, 101)},
		{"random-2", platform.Random(8, 4, 102)},
	}
	algos := []sched.Scheduler{
		sched.Hom{}, sched.HomI{}, sched.Het{},
		sched.ORROML{}, sched.OMMOML{}, sched.ODDOML{}, sched.BMM{},
	}
	inst := sched.Instance{R: 40, S: 400, T: 40}

	for _, e := range entries {
		type row struct {
			name     string
			span     float64
			enrolled int
		}
		rows := make([]row, 0, len(algos))
		bestSpan, bestWork := math.Inf(1), math.Inf(1)
		for _, a := range algos {
			res, err := a.Schedule(e.pl, inst)
			if err != nil {
				log.Fatalf("%s on %s: %v", a.Name(), e.label, err)
			}
			rows = append(rows, row{a.Name(), res.Stats.Makespan, len(res.Enrolled)})
			bestSpan = math.Min(bestSpan, res.Stats.Makespan)
			bestWork = math.Min(bestWork, res.Stats.Makespan*float64(len(res.Enrolled)))
		}
		fmt.Printf("== %s ==\n%-10s %9s %9s %9s\n", e.label, "algorithm", "rel.cost", "rel.work", "workers")
		for _, r := range rows {
			fmt.Printf("%-10s %9.3f %9.3f %9d\n",
				r.name, r.span/bestSpan, r.span*float64(r.enrolled)/bestWork, r.enrolled)
		}
		fmt.Println()
	}
}
