// Memorybound explores the Section 3 theory: for growing worker memory m it
// prints the old √(1/8m) lower bound, the paper's improved √(27/8m) bound,
// and the communication-to-computation ratio the maximum re-use algorithm
// actually achieves on a simulated single worker, showing the executed ratio
// tracks 2/t + 2/μ and stays within ~9% of the improved bound.
//
//	go run ./examples/memorybound
package main

import (
	"fmt"
	"log"

	"repro/internal/bound"
	"repro/internal/platform"
	"repro/internal/sched"
)

func main() {
	t := 200
	fmt.Printf("%8s %5s %12s %12s %12s %12s %9s\n",
		"m", "mu", "old-bound", "new-bound", "formula", "executed", "vs-bound")
	for _, m := range []int{21, 57, 156, 421, 1200, 3200, 9999} {
		mu := platform.MuMaxReuse(m)
		pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: m})
		inst := sched.Instance{R: 2 * mu, S: 3 * mu, T: t}
		res, err := sched.MaxReuse{}.Schedule(pl, inst)
		if err != nil {
			log.Fatal(err)
		}
		executed := float64(res.Stats.CommBlocks) / float64(res.Stats.Updates)
		fmt.Printf("%8d %5d %12.5f %12.5f %12.5f %12.5f %8.1f%%\n",
			m, mu,
			bound.CCRIronyToledoTiskin(m), bound.CCROpt(m),
			bound.CCRMaxReuse(m, t), executed,
			100*(executed/bound.CCROpt(m)-1))
	}
	fmt.Println("\nThe audit below checks the Loomis–Whitney window bound on the executed stream:")
	m := 421
	stream := bound.MaxReuseStream(m, t, 3)
	audit := bound.Audit(stream, m)
	fmt.Printf("m=%d: worst window at %.1f%% of the theoretical maximum updates — valid schedule: %v\n",
		m, 100*audit.WorstRatio, !audit.Violated)
}
