// The elastic runtime end to end: a job starts on two real (loopback TCP)
// workers, one of them crashes mid-job, a third worker joins mid-job, and
// the product still comes out bitwise-identical to a static in-process run —
// the re-planned chunks write the same disjoint C regions through the same
// ascending-k kernel order, whoever ends up computing them. Along the way
// the session's live throughput estimates (EWMA over every observed
// transfer and compute) are printed: the numbers the elastic executor
// re-plans with, and the numbers an adaptive mmserve daemon selects
// resources with.
//
//	go run ./examples/elastic
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	stdnet "net"
	"time"

	mmnet "repro/internal/net"
	"repro/matmul"
)

func main() {
	ctx := context.Background()
	const r, s, t, q = 10, 15, 6, 8

	// Three loopback worker daemons. Worker 2 is rigged to crash after four
	// installments — a real mid-job departure, socket gone. Worker 3 starts
	// but is NOT part of the session: it joins later, mid-job.
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		o := mmnet.WorkerOptions{Heartbeat: 100 * time.Millisecond}
		if i == 1 {
			o.CrashAfterInstalls = 4
		}
		go mmnet.Serve(ln, fmt.Sprintf("worker-%d", i+1), o)
	}

	// Operands, and the bitwise oracle from a static in-process session.
	newOps := func() (a, b, c *matmul.Matrix) {
		rng := rand.New(rand.NewSource(42))
		a, b, c = matmul.NewMatrix(r, t, q), matmul.NewMatrix(t, s, q), matmul.NewMatrix(r, s, q)
		a.FillRandom(rng)
		b.FillRandom(rng)
		c.FillRandom(rng)
		return
	}
	pl := []matmul.Worker{{C: 1, W: 1, M: 60}, {C: 1, W: 1, M: 60}}
	want := func() *matmul.Matrix {
		sess, err := matmul.Open(ctx, matmul.WithPlatform(pl...))
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		a, b, c := newOps()
		job, err := sess.Submit(ctx, a, b, c)
		if err != nil {
			log.Fatal(err)
		}
		if err := job.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		return c
	}()

	// The elastic session: two workers, adaptive executor. Submit, then join
	// the third worker while the job runs — the crash of worker-2 and the
	// join of worker-3 both land mid-flight.
	sess, err := matmul.Open(ctx,
		matmul.WithRuntime(matmul.Distributed(addrs[:2]...)),
		matmul.WithPlatform(pl...),
		matmul.WithAdaptive(0))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	a, b, c := newOps()
	job, err := sess.Submit(ctx, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.AddWorker(ctx, addrs[2], matmul.Worker{C: 1, W: 1, M: 60}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("elastic: worker-3 joined the session mid-job; worker-2 will crash mid-job")
	if err := job.Wait(ctx); err != nil {
		log.Fatalf("elastic job failed: %v", err)
	}

	if d := c.MaxAbsDiff(want); d != 0 {
		log.Fatalf("FAILED: elastic C deviates from the static in-process C by %g (want bitwise equal)", d)
	}
	fmt.Println("elastic C == static in-process C, bitwise, despite one departure and one join")

	st, err := sess.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session stats: adaptive=%v replans=%d\n", st.Adaptive, st.Replans)
	for _, w := range st.Workers {
		if w.Samples > 0 {
			fmt.Printf("  %-10s measured c=%v/blk w=%v/upd over %d samples\n", w.Name, w.CPerBlock, w.WPerUpdate, w.Samples)
		} else {
			fmt.Printf("  %-10s no observations (declared c=%g w=%g)\n", w.Name, w.Spec.C, w.Spec.W)
		}
	}
	fmt.Println("OK")
}
