// Quickstart: build a heterogeneous star platform, schedule a matrix product
// with the paper's heterogeneous algorithm, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/steady"
)

func main() {
	// Four workers, heterogeneous in links (c, time units per 80×80 block),
	// speed (w, time units per block update C_ij += A_ik·B_kj) and memory
	// (m, in block buffers).
	pl, err := platform.New(
		platform.Worker{C: 1.0, W: 1.0, M: 320}, // fast link, fast CPU, 256 MB
		platform.Worker{C: 2.0, W: 1.0, M: 640}, // slower link, 512 MB
		platform.Worker{C: 1.0, W: 2.0, M: 640}, // half-speed CPU
		platform.Worker{C: 4.0, W: 4.0, M: 128}, // weak in every respect
	)
	if err != nil {
		log.Fatal(err)
	}

	// C (40×200 blocks) += A (40×40) · B (40×200): with q = 80 this is the
	// paper's 3200×16000 B panel shape.
	inst := sched.Instance{R: 40, S: 200, T: 40}

	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:   %s (%s)\n", res.Algorithm, res.Note)
	fmt.Printf("makespan:    %.0f time units\n", res.Stats.Makespan)
	fmt.Printf("enrolled:    %d of %d workers → %v\n", len(res.Enrolled), pl.P(), res.Enrolled)
	fmt.Printf("comm volume: %d blocks for %d block updates (CCR %.4f)\n",
		res.Stats.CommBlocks, res.Stats.Updates,
		float64(res.Stats.CommBlocks)/float64(res.Stats.Updates))

	// The steady-state bound of §5 tells us how far from ideal we are; the
	// paper reports Het lands within ~2.3× of this (optimistic) bound.
	lb := steady.MakespanLowerBound(pl, inst.R, inst.S, inst.T)
	fmt.Printf("steady-state bound: %.0f (Het at %.2f× the bound)\n", lb, res.Stats.Makespan/lb)
}
