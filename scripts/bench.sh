#!/usr/bin/env bash
# Run the root benchmark suite (the paper-reproduction experiments plus the
# executor/kernel/codec perf benchmarks and the mmserve service-throughput
# benchmark, whose jobs_s metric is the service's jobs/sec) and emit a JSON
# map of benchmark name → metrics: iterations, ns/op, B/op, allocs/op, MB/s,
# and every custom b.ReportMetric value. Checked-in snapshots (BENCH_2.json,
# BENCH_3.json, …) track the perf trajectory PR over PR.
#
# Usage: scripts/bench.sh [OUT.json] [BENCHTIME] [FILTER]
#   OUT.json   output path (default: BENCH_local.json — deliberately NOT a
#              checked-in BENCH_N.json name, so a casual no-arg run cannot
#              clobber a committed snapshot; pass BENCH_<PR>.json explicitly
#              when cutting the snapshot for a PR)
#   BENCHTIME  go test -benchtime value (default 1s; CI smoke passes 3x)
#   FILTER     go test -bench regexp (default '.': the whole suite; the CI
#              regression gate re-measures only the gated zero-alloc
#              benchmarks at a warm iteration count, because a 3x run's
#              pool-warmup allocations would drown the allocs/op signal)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_local.json}"
benchtime="${2:-1s}"
filter="${3:-.}"

raw=$(go test -run='^$' -bench="$filter" -benchmem -benchtime="$benchtime" -count=1 .)
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v host="$(go env GOOS)/$(go env GOARCH)" '
BEGIN { first = 1 }
/^cpu: / { cpu = $0; sub(/^cpu: */, "", cpu) }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (first) { printf "{\n"; first = 0 } else { printf ",\n" }
	printf "  \"%s\": {\"iterations\": %s", name, $2
	# Remaining fields come in value/unit pairs: 1234 ns/op, 8 B/op,
	# 1.23 relcost_Het, … — slashes become underscores for JSON keys.
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END {
	if (first) { print "{}"; exit 1 }
	printf ",\n  \"_meta\": {\"host\": \"%s\", \"cpu\": \"%s\", \"benchtime\": \"%s\"}\n}\n", host, cpu, bt
}' bt="$benchtime" >"$out"

echo "wrote $out"
