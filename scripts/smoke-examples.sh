#!/usr/bin/env bash
# Smoke-test the runnable examples: build every example, then actually run
# the fast ones (quickstart: scheduling only; distributed: a real TCP
# master-worker round trip on loopback; serve: an mmserve daemon over a
# persistent 4-worker fleet running two concurrent client submissions plus a
# post-crash job, every C verified bitwise against the in-process engine)
# and fail on any non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./examples/..."
go build ./examples/...

echo "== go run ./examples/quickstart"
go run ./examples/quickstart

echo "== go run ./examples/distributed"
go run ./examples/distributed

echo "== go run ./examples/serve"
go run ./examples/serve

echo "examples smoke OK"
