#!/usr/bin/env bash
# Smoke-test the runnable examples: build every example, then actually run
# the fast ones (quickstart: scheduling only; library: the public matmul
# facade driving all three runtimes bitwise-identically plus a mid-transfer
# cancellation; distributed: a real TCP master-worker round trip on
# loopback, low-level executors and the facade; serve: an mmserve daemon
# over a persistent 4-worker fleet running two concurrent facade submissions
# plus a post-crash job; elastic: a worker crashing mid-job and another
# joining mid-job under the adaptive executor — every C verified bitwise
# against the in-process engine) and fail on any non-zero exit.
#
# Every example runs under timeout(1): a deadlocked example fails the job in
# minutes with exit 124 instead of wedging CI until the 6-hour job timeout.
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-example wall budget, seconds. The examples finish in seconds; the
# budget only caps a hang, so it is generous enough for a slow CI runner.
BUDGET="${SMOKE_TIMEOUT:-180}"

run_example() {
	local name="$1" status=0 out
	shift
	echo "== go run ./examples/$name (budget ${BUDGET}s)"
	out="$(mktemp)"
	# -k gives a wedged process 10s to die on TERM before the KILL.
	timeout -k 10 "$BUDGET" go run "./examples/$name" 2>&1 | tee "$out" || status=$?
	if [ "$status" -eq 124 ]; then
		echo "FAIL: examples/$name hung past ${BUDGET}s (likely deadlock)" >&2
		exit "$status"
	elif [ "$status" -ne 0 ]; then
		echo "FAIL: examples/$name exited with status $status" >&2
		exit "$status"
	fi
	# Any extra args are lines the example's output must contain (the serve
	# example self-scrapes its /metrics and /healthz debug endpoints and
	# prints this marker only when both answered 200 with every family).
	local marker
	for marker in "$@"; do
		if ! grep -qF "$marker" "$out"; then
			echo "FAIL: examples/$name output is missing: $marker" >&2
			rm -f "$out"
			exit 1
		fi
	done
	rm -f "$out"
}

echo "== go build ./examples/..."
go build ./examples/...

run_example quickstart
run_example library
run_example distributed
run_example serve "observability scrape OK: /healthz 200, /metrics families present ✓"
run_example elastic

echo "examples smoke OK"
