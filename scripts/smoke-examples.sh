#!/usr/bin/env bash
# Smoke-test the runnable examples: build every example, then actually run
# the fast ones (quickstart: scheduling only; library: the public matmul
# facade driving all three runtimes bitwise-identically plus a mid-transfer
# cancellation; distributed: a real TCP master-worker round trip on
# loopback, low-level executors and the facade; serve: an mmserve daemon
# over a persistent 4-worker fleet running two concurrent facade submissions
# plus a post-crash job, every C verified bitwise against the in-process
# engine) and fail on any non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./examples/..."
go build ./examples/...

echo "== go run ./examples/quickstart"
go run ./examples/quickstart

echo "== go run ./examples/library"
go run ./examples/library

echo "== go run ./examples/distributed"
go run ./examples/distributed

echo "== go run ./examples/serve"
go run ./examples/serve

echo "examples smoke OK"
