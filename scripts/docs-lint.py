#!/usr/bin/env python3
"""Documentation lint, stdlib only. Two checks, both fail the build:

1. Dead links: every relative link in every *.md file must point at a file
   or directory that exists, and a #fragment must match a heading in the
   target (GitHub slugification). External schemes (http, https, mailto)
   are not checked; relative paths that escape the repo root are skipped
   (GitHub resolves e.g. ../../actions/... against the site, not the tree).

2. Package-map drift: the README's "Package map" section must mention every
   internal/* and cmd/* package that exists on disk, and must not mention
   one that doesn't.

Usage: scripts/docs-lint.py [repo-root]
"""

import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "node_modules"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in sorted(dirnames) if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def slugify(heading):
    # GitHub's anchor algorithm: strip markup-ish punctuation, lowercase,
    # spaces to dashes.
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            content = f.read()
        cache[path] = {slugify(m.group(1)) for m in HEADING.finditer(content)}
    return cache[path]


def check_links(root):
    errors = []
    for md in md_files(root):
        rel = os.path.relpath(md, root)
        with open(md, encoding="utf-8") as f:
            content = f.read()
        # Fenced code blocks hold shell snippets, not prose links.
        content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
        for m in LINK.finditer(content):
            target = m.group(1)
            if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path, _, frag = target.partition("#")
            base = md if not path else os.path.normpath(
                os.path.join(os.path.dirname(md), path))
            if os.path.commonpath([os.path.abspath(base), root]) != root:
                continue  # escapes the repo: resolved by the hosting site
            if not os.path.exists(base):
                errors.append(f"{rel}: dead link {target!r}")
                continue
            if frag and base.endswith(".md"):
                want = {frag, re.sub(r"-\d+$", "", frag)}
                if not (want & anchors_of(base)):
                    errors.append(f"{rel}: link {target!r}: no such heading")
    return errors


def check_package_map(root):
    errors = []
    readme = os.path.join(root, "README.md")
    with open(readme, encoding="utf-8") as f:
        content = f.read()
    section = re.search(r"^## Package map\n(.*?)(?=^## )", content,
                        re.MULTILINE | re.DOTALL)
    if not section:
        return ["README.md: no '## Package map' section"]
    listed = set(re.findall(r"\b((?:internal|cmd)/[\w-]+)", section.group(1)))

    on_disk = set()
    for parent in ("internal", "cmd"):
        for name in sorted(os.listdir(os.path.join(root, parent))):
            dir_ = os.path.join(root, parent, name)
            if os.path.isdir(dir_) and any(
                    f.endswith(".go") for f in os.listdir(dir_)):
                on_disk.add(f"{parent}/{name}")

    for pkg in sorted(on_disk - listed):
        errors.append(f"README.md package map: missing {pkg}")
    for pkg in sorted(listed - on_disk):
        errors.append(f"README.md package map: lists {pkg}, which does not exist")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = check_links(root) + check_package_map(root)
    for e in errors:
        print(f"docs-lint: {e}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print("docs-lint: ok")


if __name__ == "__main__":
    main()
