#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh bench.sh run against the latest
checked-in BENCH_N.json snapshot and fail CI on real regressions.

Stdlib-only. Two classes of failure, both scoped to the *gated* benchmarks
(the zero-alloc hot paths, stable enough to compare across runs):

  * ns/op regression beyond --threshold (default 25%)
  * ANY growth in allocs/op — these paths are zero-alloc by construction,
    so a single new allocation per op is a real regression, not noise

Every other shared benchmark is reported informationally; macro benchmarks
(figure reproductions, service throughput) are too machine- and
benchtime-sensitive to gate on a snapshot produced elsewhere.

A third check, --require SUBSTR:METRIC:MIN, gates a custom b.ReportMetric
value from the FRESH run alone (no baseline involved): machine-independent
ratios like the affinity benchmark's a_saved_frac — the fraction of A-panel
bytes the operand cache kept off the wire — are stable enough to hold to an
absolute floor even though the surrounding ns/op is not.

Usage:
    scripts/bench-compare.py FRESH.json [BASELINE.json]
        [--threshold 0.25] [--gate BlockMulAdd,CodecReadBlock]
        [--require 'AffinityThroughput/cache=on:a_saved_frac:0.5']

With no BASELINE, the highest-numbered BENCH_<N>.json in the repo root is
used. Exit status: 0 clean, 1 regression, 2 usage/data error.

Intentional regressions: land the PR with the `bench-regression-ok` label —
the bench-smoke workflow skips this gate when the label is present — and
refresh the BENCH_N.json snapshot in the same PR so the next baseline is
honest.
"""

import argparse
import json
import pathlib
import re
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench-compare: cannot read {path}: {e}")
    return {k: v for k, v in data.items() if k.startswith("Benchmark")}


def latest_baseline(root):
    best, best_n = None, -1
    for p in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_n:
            best, best_n = p, int(m.group(1))
    if best is None:
        sys.exit("bench-compare: no BENCH_<N>.json baseline in repo root")
    return best


def fmt_delta(old, new):
    if old <= 0:
        return "n/a"
    pct = (new - old) / old * 100.0
    return f"{pct:+.1f}%"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="bench.sh JSON from this run")
    ap.add_argument("baseline", nargs="?", help="snapshot to compare against (default: latest BENCH_<N>.json)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative ns/op regression that fails a gated benchmark (default 0.25)")
    ap.add_argument("--gate", default="BlockMulAdd,CodecReadBlock",
                    help="comma-separated substrings of benchmark names to gate (default: the zero-alloc pair)")
    ap.add_argument("--require", action="append", default=[], metavar="SUBSTR:METRIC:MIN",
                    help="fail unless a fresh benchmark whose name contains SUBSTR reports "
                         "METRIC, and every such value is >= MIN (fresh-run-only check)")
    args = ap.parse_args()

    root = pathlib.Path(__file__).resolve().parent.parent
    baseline_path = pathlib.Path(args.baseline) if args.baseline else latest_baseline(root)
    fresh = load(args.fresh)
    base = load(baseline_path)
    gates = [g.strip() for g in args.gate.split(",") if g.strip()]

    shared = sorted(set(fresh) & set(base))
    if not shared and not args.require:
        sys.exit("bench-compare: no shared benchmarks between fresh run and baseline")

    failures = []
    print(f"bench-compare: {args.fresh} vs {baseline_path.name} "
          f"(gate: {', '.join(gates)}, threshold {args.threshold:.0%})")
    for name in shared:
        f, b = fresh[name], base[name]
        gated = any(g in name for g in gates)
        line = f"  {'GATE ' if gated else '     '}{name}"
        checks = []

        old_ns, new_ns = b.get("ns_op"), f.get("ns_op")
        if old_ns and new_ns:
            checks.append(f"ns/op {old_ns:g} -> {new_ns:g} ({fmt_delta(old_ns, new_ns)})")
            if gated and old_ns > 0 and (new_ns - old_ns) / old_ns > args.threshold:
                failures.append(f"{name}: ns/op regressed {fmt_delta(old_ns, new_ns)} "
                                f"({old_ns:g} -> {new_ns:g}), threshold {args.threshold:.0%}")

        old_al, new_al = b.get("allocs_op"), f.get("allocs_op")
        if old_al is not None and new_al is not None:
            checks.append(f"allocs/op {old_al:g} -> {new_al:g}")
            if gated and new_al > old_al:
                failures.append(f"{name}: allocs/op grew {old_al:g} -> {new_al:g} "
                                "(zero-alloc benchmark; any growth is a regression)")

        print(line + (": " + ", ".join(checks) if checks else ""))

    for req in args.require:
        try:
            sub, metric, minv = req.rsplit(":", 2)
            minv = float(minv)
        except ValueError:
            sys.exit(f"bench-compare: bad --require {req!r} (want SUBSTR:METRIC:MIN)")
        hits = {n: v[metric] for n, v in fresh.items() if sub in n and metric in v}
        if not hits:
            failures.append(f"--require {req}: no fresh benchmark matching {sub!r} reports {metric}")
        for name, val in sorted(hits.items()):
            ok = val >= minv
            print(f"  REQ  {name}: {metric} = {val:g} (min {minv:g}) {'ok' if ok else 'FAIL'}")
            if not ok:
                failures.append(f"{name}: {metric} = {val:g} below required minimum {minv:g}")

    missing = [n for n in base if n not in fresh and any(g in n for g in gates)]
    for name in missing:
        failures.append(f"{name}: gated benchmark present in baseline but missing from this run")

    if failures:
        print("\nbench-compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nIf this regression is intentional, add the 'bench-regression-ok' label "
              "to the PR and refresh the BENCH_<N>.json snapshot.", file=sys.stderr)
        return 1
    print("bench-compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
