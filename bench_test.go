// Package repro's root benchmarks regenerate every table and figure of the
// paper (see DESIGN.md §5 for the experiment index). Each benchmark runs the
// corresponding experiment and reports the paper's headline quantities as
// custom metrics (relative costs, bound ratios), so `go test -bench=.`
// doubles as the reproduction harness. Matrix dimensions are scaled to 1/4
// of paper scale to keep a full -bench run in tens of seconds; `cmd/mmexp`
// runs the same experiments at full scale.
package repro

import (
	"bytes"
	"context"
	"math/rand"
	stdnet "net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/bound"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/lp"
	"repro/internal/lu"
	"repro/internal/matrix"
	mmnet "repro/internal/net"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/steady"
	"repro/internal/trace"
	"repro/matmul"
)

var benchCfg = exp.Config{Scale: 0.25, Seed: 1}

// reportFigure runs one figure builder and reports the average relative cost
// of the three summary algorithms (Figure 9's ingredients).
func reportFigure(b *testing.B, build func(exp.Config) (*exp.Figure, error)) {
	b.Helper()
	var fig *exp.Figure
	for i := 0; i < b.N; i++ {
		f, err := build(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	for _, name := range []string{"Het", "ODDOML", "BMM"} {
		var sum float64
		var n int
		for _, row := range fig.Rows {
			if c, ok := row.Cells[name]; ok {
				sum += c.RelCost
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "relcost_"+name)
		}
	}
}

// BenchmarkFig4 — heterogeneous memory (paper Figure 4).
func BenchmarkFig4(b *testing.B) { reportFigure(b, exp.Fig4) }

// BenchmarkFig5 — heterogeneous communication links (paper Figure 5).
func BenchmarkFig5(b *testing.B) { reportFigure(b, exp.Fig5) }

// BenchmarkFig6 — heterogeneous computation speeds (paper Figure 6).
func BenchmarkFig6(b *testing.B) { reportFigure(b, exp.Fig6) }

// BenchmarkFig7 — fully heterogeneous platforms (paper Figure 7).
func BenchmarkFig7(b *testing.B) { reportFigure(b, exp.Fig7) }

// BenchmarkFig8 — the real Lyon platform (paper Figure 8).
func BenchmarkFig8(b *testing.B) { reportFigure(b, exp.Fig8) }

// BenchmarkFig9 — the summary figure: all experiments, Het vs ODDOML vs BMM
// (paper Figure 9). Reports the two headline gains.
func BenchmarkFig9(b *testing.B) {
	var sum *exp.Figure
	for i := 0; i < b.N; i++ {
		var figs []*exp.Figure
		for _, build := range []func(exp.Config) (*exp.Figure, error){exp.Fig4, exp.Fig5, exp.Fig6, exp.Fig7, exp.Fig8} {
			f, err := build(benchCfg)
			if err != nil {
				b.Fatal(err)
			}
			figs = append(figs, f)
		}
		sum = exp.Summary(figs...)
	}
	avg := sum.Rows[len(sum.Rows)-2]
	b.ReportMetric(avg.Cells["Het"].RelCost, "avg_relcost_Het")
	b.ReportMetric(avg.Cells["ODDOML"].RelCost, "avg_relcost_ODDOML")
	b.ReportMetric(avg.Cells["BMM"].RelCost, "avg_relcost_BMM")
	worst := sum.Rows[len(sum.Rows)-1]
	b.ReportMetric(worst.Cells["Het"].RelCost, "worst_relcost_Het")
}

// BenchmarkSection3Bounds — the §3 theory: executed CCR of the maximum
// re-use algorithm vs the improved lower bound √(27/8m).
func BenchmarkSection3Bounds(b *testing.B) {
	m, t := 1021, 100
	var ccr float64
	for i := 0; i < b.N; i++ {
		pl := platform.MustNew(platform.Worker{C: 1, W: 1, M: m})
		mu := platform.MuMaxReuse(m)
		res, err := sched.MaxReuse{}.Schedule(pl, sched.Instance{R: 2 * mu, S: 4 * mu, T: t})
		if err != nil {
			b.Fatal(err)
		}
		ccr = float64(res.Stats.CommBlocks) / float64(res.Stats.Updates)
	}
	b.ReportMetric(ccr, "ccr_executed")
	b.ReportMetric(bound.CCROpt(m), "ccr_lower_bound")
	b.ReportMetric(bound.CCRBMM(m, t), "ccr_toledo")
}

// BenchmarkSteadyStateLP — Table 1: the bandwidth-centric linear program
// solved exactly by simplex on the 20-worker Lyon platform.
func BenchmarkSteadyStateLP(b *testing.B) {
	pl := platform.LyonAugust2007()
	var tp float64
	for i := 0; i < b.N; i++ {
		a, err := steady.SolveLP(pl)
		if err != nil {
			b.Fatal(err)
		}
		tp = a.Throughput
	}
	b.ReportMetric(tp, "throughput")
}

// BenchmarkTable2Infeasibility — Table 2: buffer demand of the
// bandwidth-centric solution as the link ratio x grows.
func BenchmarkTable2Infeasibility(b *testing.B) {
	var demand float64
	for i := 0; i < b.N; i++ {
		pl := platform.Table2(16)
		a := steady.BandwidthCentric(pl)
		demand = steady.InputBufferDemand(pl, a, 0)
	}
	b.ReportMetric(demand, "p1_buffer_demand_x16")
}

// BenchmarkSteadyUpperBound — §6 summary: Het's makespan against the
// steady-state bound (paper: 2.29× average).
func BenchmarkSteadyUpperBound(b *testing.B) {
	pl := platform.HeteroComm()
	inst := sched.Instance{R: 25, S: 250, T: 25}
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Het{}.Schedule(pl, inst)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Stats.Makespan / steady.MakespanLowerBound(pl, inst.R, inst.S, inst.T)
	}
	b.ReportMetric(ratio, "het_over_bound")
}

// BenchmarkAblationOnePort — design-choice ablation: how much the one-port
// constraint costs ODDOML against an idealized multi-port master.
func BenchmarkAblationOnePort(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r1, err := ablationRun(false)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ablationRun(true)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r1 / r2
	}
	b.ReportMetric(ratio, "oneport_over_multiport")
}

// BenchmarkAblationLayout — design-choice ablation: the optimized layout
// (ODDOML) against Toledo's equal-thirds layout (BMM) on the same platform,
// isolating the memory-layout contribution the paper quantifies at ~19%.
func BenchmarkAblationLayout(b *testing.B) {
	pl := platform.HeteroMemory()
	inst := sched.Instance{R: 25, S: 250, T: 25}
	var gain float64
	for i := 0; i < b.N; i++ {
		odd, err := sched.ODDOML{}.Schedule(pl, inst)
		if err != nil {
			b.Fatal(err)
		}
		bmm, err := sched.BMM{}.Schedule(pl, inst)
		if err != nil {
			b.Fatal(err)
		}
		gain = 1 - odd.Stats.Makespan/bmm.Stats.Makespan
	}
	b.ReportMetric(100*gain, "layout_gain_pct")
}

// BenchmarkLUSimulation — the extension: simulated master-worker LU.
func BenchmarkLUSimulation(b *testing.B) {
	pl := platform.Homogeneous(4, 0.4, 1, 320)
	var span float64
	for i := 0; i < b.N; i++ {
		total, _, err := lu.SimulateMakespan(pl, 30, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		span = total
	}
	b.ReportMetric(span, "lu_makespan")
}

// BenchmarkBlockMulAdd is the q=80 kernel the whole model normalizes
// against: one block update = 2·q³ flops. The operands are zero-free, like
// the engine's random dense blocks (an earlier version used i%7, whose 14%
// exact zeros flattered the since-removed zero-skip branch).
func BenchmarkBlockMulAdd(b *testing.B) {
	a := matrix.NewBlock(80)
	bb := matrix.NewBlock(80)
	c := matrix.NewBlock(80)
	for i := range a.Data {
		a.Data[i] = float64(i%7) + 0.5
		bb.Data[i] = float64(i%5) + 0.25
	}
	b.SetBytes(3 * 8 * 80 * 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.MulAdd(c, a, bb)
	}
}

func benchRNG() *rand.Rand { return rand.New(rand.NewSource(3)) }

// runEngineBench executes one plan repeatedly on the in-process engine with
// paced transfers (5µs per block×unit-cost — the modeled link time a real
// cluster would spend on the wire) and reports blocks moved per second of
// modeled+real time. Sequential vs pipelined on the same plan isolates the
// executor: the sequential op loop leaves the link idle while it waits in
// RecvC, the pipelined executor does not.
func runEngineBench(b *testing.B, pipelined, onePort bool) {
	pl := platform.Homogeneous(4, 1, 1, 60)
	inst := sched.Instance{R: 8, S: 16, T: 6}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		b.Fatal(err)
	}
	plan := res.Plan()
	q := 16
	rng := benchRNG()
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	bm := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c0 := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c0.FillRandom(rng)
	cfg := engine.Config{
		Workers: pl.P(), T: inst.T, Platform: pl, TimePerUnit: 5 * time.Microsecond,
		Pipelined: pipelined, OnePort: onePort,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := c0.Clone()
		b.StartTimer()
		if err := engine.Run(cfg, plan, a, bm, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRun is the sequential executor: ops issued strictly in plan
// order from one goroutine, every paced transfer and every RecvC wait
// serializing against everything else.
func BenchmarkEngineRun(b *testing.B) { runEngineBench(b, false, false) }

// BenchmarkEngineRunPipelined is the concurrent executor on the same plan:
// per-worker dispatch goroutines overlap transfers to distinct workers with
// each other and with all compute. C is bitwise-identical to the sequential
// run's.
func BenchmarkEngineRunPipelined(b *testing.B) { runEngineBench(b, true, false) }

// BenchmarkEngineRunPipelinedOnePort adds the one-port gate: transfers
// serialize (the paper's model) but compute still overlaps, bounding the
// run by total transfer time rather than total transfer+wait time.
func BenchmarkEngineRunPipelinedOnePort(b *testing.B) { runEngineBench(b, true, true) }

// BenchmarkDistributedLoopback drives 3 loopback-TCP mmworker serve loops
// with the pipelined executor — real sockets, real codec traffic, the
// steady-state zero-alloc block path end to end.
func BenchmarkDistributedLoopback(b *testing.B) {
	pl := platform.Homogeneous(3, 1, 1, 60)
	inst := sched.Instance{R: 6, S: 12, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		b.Fatal(err)
	}
	plan := res.Plan()
	q := 16
	rng := benchRNG()
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	bm := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c0 := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c0.FillRandom(rng)

	var addrs []string
	for i := 0; i < pl.P(); i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 200 * time.Millisecond})
	}
	m, err := mmnet.Dial(addrs, &mmnet.MasterOptions{IOTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := c0.Clone()
		b.StartTimer()
		if err := m.RunPipelined(inst.T, plan, a, bm, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeThroughput measures the multi-job scheduling service end to
// end: a persistent 4-worker loopback fleet behind an mmserve job queue, fed
// batches of 4 concurrently submitted products. Each iteration is one batch
// — admission, per-job resource selection, disjoint leases, pipelined
// distributed execution, lease return — and the headline metric is jobs/s.
func BenchmarkServeThroughput(b *testing.B) {
	const fleetSize = 4
	var addrs []string
	for i := 0; i < fleetSize; i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 200 * time.Millisecond})
	}
	fleet, err := serve.NewFleet(addrs, platform.Homogeneous(fleetSize, 1, 1, 60).Workers, serve.FleetOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	srv := serve.NewServer(fleet, serve.Config{MaxWorkersPerJob: 2})
	defer srv.Close()

	inst := sched.Instance{R: 6, S: 9, T: 4}
	q := 16
	rng := benchRNG()
	mk := func() (a, bm, c *matrix.BlockMatrix) {
		a = matrix.NewBlockMatrix(inst.R, inst.T, q)
		bm = matrix.NewBlockMatrix(inst.T, inst.S, q)
		c = matrix.NewBlockMatrix(inst.R, inst.S, q)
		a.FillRandom(rng)
		bm.FillRandom(rng)
		c.FillRandom(rng)
		return
	}

	jobs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		type op struct{ a, bm, c *matrix.BlockMatrix }
		batch := make([]op, fleetSize)
		for j := range batch {
			batch[j].a, batch[j].bm, batch[j].c = mk()
		}
		b.StartTimer()
		ids := make([]uint64, len(batch))
		for j, o := range batch {
			id, err := srv.Submit(o.a, o.bm, o.c)
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = id
		}
		for _, id := range ids {
			if err := srv.Wait(id); err != nil {
				b.Fatal(err)
			}
		}
		jobs += len(batch)
	}
	b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs_s")
}

// BenchmarkAffinityThroughput measures what operand-affinity scheduling buys
// on a repeated-operand workload: one shared A multiplied against 16 distinct
// Bs over a persistent 4-worker caching fleet, submitted with precomputed
// panel digests the way an installed matmul.Operand submits them. The
// "cache=on" variant routes jobs toward workers already holding A's panels
// and skips the resident transfers (a_saved_frac is the fraction of A-panel
// bytes residency kept off the wire — the PR gates on ≥0.5); "cache=off" is
// the load-only baseline. Every job's C is checked bitwise against the
// in-process engine: affinity changes what moves, never what is computed.
func BenchmarkAffinityThroughput(b *testing.B) {
	const (
		fleetSize = 4
		nB        = 16
		q         = 16
	)
	inst := sched.Instance{R: 6, S: 6, T: 4}

	for _, mode := range []struct {
		name    string
		noCache bool
	}{
		{"cache=on", false},
		{"cache=off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rng := benchRNG()
			a := matrix.NewBlockMatrix(inst.R, inst.T, q)
			a.FillRandom(rng)
			bs := make([]*matrix.BlockMatrix, nB)
			c0s := make([]*matrix.BlockMatrix, nB)
			wants := make([]*matrix.BlockMatrix, nB)
			for j := range bs {
				bs[j] = matrix.NewBlockMatrix(inst.T, inst.S, q)
				c0s[j] = matrix.NewBlockMatrix(inst.R, inst.S, q)
				bs[j].FillRandom(rng)
				c0s[j].FillRandom(rng)
				wants[j] = c0s[j].Clone()
				if err := matrix.Multiply(wants[j], a, bs[j]); err != nil {
					b.Fatal(err)
				}
			}
			// The digests an installed Operand would carry: A hashed once for
			// the whole workload, each B hashed once across all its reuses.
			panels := make([]*cache.JobPanels, nB)
			for j := range panels {
				panels[j] = cache.PanelsForJob(a, bs[j])
			}

			var addrs []string
			for i := 0; i < fleetSize; i++ {
				ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer ln.Close()
				addrs = append(addrs, ln.Addr().String())
				opts := mmnet.WorkerOptions{Heartbeat: 200 * time.Millisecond}
				if !mode.noCache {
					opts.Cache = cache.NewPanelCache(0)
				}
				go mmnet.Serve(ln, addrs[i], opts)
			}
			fleet, err := serve.NewFleet(addrs, platform.Homogeneous(fleetSize, 1, 1, 60).Workers, serve.FleetOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer fleet.Close()
			srv := serve.NewServer(fleet, serve.Config{MaxWorkersPerJob: 2, NoCache: mode.noCache})
			defer srv.Close()

			jobs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cs := make([]*matrix.BlockMatrix, nB)
				for j := range cs {
					cs[j] = c0s[j].Clone()
				}
				b.StartTimer()
				// Sequential submissions: each job's lease returns (and its
				// residency is absorbed) before the next job is placed, so the
				// affinity bias steers every job after the first.
				for j := 0; j < nB; j++ {
					id, err := srv.SubmitPanels(a, bs[j], cs[j], panels[j])
					if err != nil {
						b.Fatal(err)
					}
					if err := srv.Wait(id); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for j := range cs {
					if d := cs[j].MaxAbsDiff(wants[j]); d != 0 {
						b.Fatalf("job %d: C differs from the engine product by %g (want bitwise equal)", j, d)
					}
				}
				b.StartTimer()
				jobs += nB
			}
			b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs_s")
			if ct := srv.Status().Cache; ct != nil {
				// ASaved counts bytes residency kept off the wire, so the
				// load-only A traffic for the same schedule is ASent+ASaved.
				b.ReportMetric(float64(ct.ASentBytes)/float64(jobs), "a_sent_bytes")
				b.ReportMetric(float64(ct.ASavedBytes)/float64(jobs), "a_saved_bytes")
				if tot := ct.ASentBytes + ct.ASavedBytes; tot > 0 {
					b.ReportMetric(float64(ct.ASavedBytes)/float64(tot), "a_saved_frac")
				}
			}
		})
	}
}

// BenchmarkSessionOverhead prices the matmul facade: the same unpaced
// product run through a matmul.Session on the in-process runtime
// (sub-benchmark "facade": Open once, Submit+Wait per iteration) and
// through direct engine.Run over a pre-built plan ("direct"). The facade
// re-schedules the plan per job — the by-design cost of a one-call API —
// so the honest comparison is facade vs direct including scheduling
// ("direct_sched"); facade vs that must be within noise.
func BenchmarkSessionOverhead(b *testing.B) {
	pl := platform.Homogeneous(4, 1, 1, 60)
	inst := sched.Instance{R: 8, S: 16, T: 6}
	q := 16
	rng := benchRNG()
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	bm := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c0 := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c0.FillRandom(rng)

	b.Run("direct", func(b *testing.B) {
		res, err := sched.Het{}.Schedule(pl, inst)
		if err != nil {
			b.Fatal(err)
		}
		plan := res.Plan()
		cfg := engine.Config{Workers: pl.P(), T: inst.T, Pipelined: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := c0.Clone()
			b.StartTimer()
			if err := engine.Run(cfg, plan, a, bm, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct_sched", func(b *testing.B) {
		cfg := engine.Config{Workers: pl.P(), T: inst.T, Pipelined: true}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := c0.Clone()
			b.StartTimer()
			res, err := sched.Het{}.Schedule(pl, inst)
			if err != nil {
				b.Fatal(err)
			}
			if err := engine.Run(cfg, res.Plan(), a, bm, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("facade", func(b *testing.B) {
		sess, err := matmul.Open(context.Background(), matmul.WithPlatform(pl.Workers...))
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := c0.Clone()
			b.StartTimer()
			job, err := sess.Submit(context.Background(), a, bm, c)
			if err != nil {
				b.Fatal(err)
			}
			if err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecReadBlock measures the steady-state pooled decode path the
// workers' receive loops run on: one warm BlockCodec + BlockPool, q=80
// frames. The headline number is allocs/op (near zero once warm).
func BenchmarkCodecReadBlock(b *testing.B) {
	var pool matrix.BlockPool
	enc := &matrix.BlockCodec{}
	dec := &matrix.BlockCodec{Pool: &pool}
	src := matrix.NewBlock(80)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	var frame bytes.Buffer
	if err := enc.WriteBlock(&frame, src); err != nil {
		b.Fatal(err)
	}
	data := frame.Bytes()
	rd := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		blk, err := dec.ReadBlock(rd)
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(blk)
	}
}

// BenchmarkSimplex measures the LP substrate on random dense programs.
func BenchmarkSimplex(b *testing.B) {
	n, m := 24, 30
	c := make([]float64, n)
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	for j := range c {
		c[j] = float64(j%5) + 1
	}
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = float64((i*j)%7) + 0.5
		}
		rhs[i] = 50
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Maximize(c, rows, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHetSelection isolates phase 1 of the heterogeneous algorithm
// (selection throughput matters: the paper includes decision time in its
// reported makespans).
func BenchmarkHetSelection(b *testing.B) {
	pl := platform.FullyHetero(4)
	inst := sched.Instance{R: 25, S: 250, T: 25}
	for i := 0; i < b.N; i++ {
		if _, err := (sched.HetVariant{V: sched.Variant{LookAhead: true}}).Schedule(pl, inst); err != nil {
			b.Fatal(err)
		}
	}
}

func ablationRun(multiPort bool) (float64, error) {
	// ODDOML-style run with the port constraint toggled.
	pl := platform.HeteroComm()
	inst := sched.Instance{R: 25, S: 250, T: 25}
	res, err := sched.ODDOML{}.Schedule(pl, inst)
	if err != nil {
		return 0, err
	}
	if !multiPort {
		return res.Stats.Makespan, nil
	}
	multi, err := sched.AblateMultiPort(pl, inst)
	if err != nil {
		return 0, err
	}
	return multi, nil
}

// flappyBackend is an in-memory engine.Backend whose flaky worker dies
// after a fixed number of operations every time it is (re)joined — the
// "machine that keeps dropping off the network and coming back" of the
// adaptive-rebalance benchmark. Thread-safe: the elastic executor drives
// distinct workers from concurrent dispatch goroutines.
type flappyBackend struct {
	mu      sync.Mutex
	nw      int
	flaky   map[int]bool // indices that die flapOps operations after joining
	flapOps int
	ops     map[int]int
	held    map[int]struct {
		ch     matrix.Chunk
		blocks []*matrix.Block
	}
}

func newFlappyBackend(nw, flapOps int) *flappyBackend {
	return &flappyBackend{
		nw: nw, flapOps: flapOps,
		// Worker 0 flaps: every scheduler enrolls the first worker, so the
		// churn is guaranteed to hit the plan.
		flaky: map[int]bool{0: true},
		ops:   make(map[int]int),
		held: make(map[int]struct {
			ch     matrix.Chunk
			blocks []*matrix.Block
		}),
	}
}

func (f *flappyBackend) Workers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nw
}

// rejoin adds a fresh flaky index — the flapped machine coming back as a
// new connection, exactly how Master.AddWorker models it.
func (f *flappyBackend) rejoin() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nw++
	f.flaky[f.nw-1] = true
	return f.nw - 1
}

func (f *flappyBackend) op(w int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flaky[w] && f.ops[w] >= f.flapOps {
		return true
	}
	f.ops[w]++
	return false
}

func (f *flappyBackend) SendC(w int, ch matrix.Chunk, blocks []*matrix.Block) error {
	if f.op(w) {
		return engine.ErrWorkerDown
	}
	cp := make([]*matrix.Block, len(blocks))
	for i, blk := range blocks {
		cp[i] = blk.Clone()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.held[w] = struct {
		ch     matrix.Chunk
		blocks []*matrix.Block
	}{ch, cp}
	return nil
}

func (f *flappyBackend) SendAB(w int, ch matrix.Chunk, k0, k1 int, a, bm []*matrix.Block) error {
	if f.op(w) {
		return engine.ErrWorkerDown
	}
	f.mu.Lock()
	h := f.held[w]
	f.mu.Unlock()
	return engine.ApplyInstallment(ch, h.blocks, a, bm, k1-k0)
}

func (f *flappyBackend) RecvC(w int, ch matrix.Chunk) ([]*matrix.Block, error) {
	if f.op(w) {
		return nil, engine.ErrWorkerDown
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	h := f.held[w]
	delete(f.held, w)
	return h.blocks, nil
}

// BenchmarkAdaptiveRebalance measures steady-state job throughput of the
// elastic executor while one worker flaps: every run, the flaky worker dies
// mid-job (its chunks re-planned onto the survivors by live estimates) and
// rejoins as a fresh index (triggering a join re-plan onto the grown
// fleet). Custom metrics report the re-plans each job absorbs; ns/op is the
// wall cost of one full product under constant membership churn.
func BenchmarkAdaptiveRebalance(b *testing.B) {
	// A deliberately chunky hand-built plan — one 1×s row chunk per job,
	// four jobs per worker — so there is an un-dispatched remainder to
	// re-plan whenever the flaky worker drops. (Scheduler plans at this
	// scale carve one big chunk per worker: nothing left to rebalance.)
	pl := platform.Homogeneous(3, 1, 1, 60)
	const perWorker = 4
	inst := sched.Instance{R: pl.P() * perWorker, S: 12, T: 4}
	var plan []sim.PlanOp
	for round := 0; round < perWorker; round++ {
		for w := 0; w < pl.P(); w++ {
			ch := matrix.Chunk{Row0: round*pl.P() + w, Col0: 0, H: 1, W: inst.S}
			plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.SendC, Chunk: ch})
			for k := 0; k < inst.T; k++ {
				plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.SendAB, Chunk: ch, K0: k, K1: k + 1})
			}
			plan = append(plan, sim.PlanOp{Worker: w, Kind: trace.RecvC, Chunk: ch})
		}
	}
	q := 16
	rng := benchRNG()
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	bm := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c0 := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c0.FillRandom(rng)

	var replans int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := c0.Clone()
		be := newFlappyBackend(pl.P(), 6)
		tr := adapt.NewTracker(pl.Workers, time.Microsecond, 0)
		join := make(chan int, 8)
		el := &engine.Elastic{
			Tracker:        tr,
			Join:           join,
			DriftThreshold: -1, // membership churn is the signal under test
			OnReplan: func(reason string, _ int) {
				atomic.AddInt64(&replans, 1)
				if reason == "depart" {
					// The flapped machine comes right back as a new index.
					select {
					case join <- be.rejoin():
					default:
					}
				}
			},
		}
		b.StartTimer()
		if err := engine.ExecuteElasticContext(context.Background(), inst.T, plan, a, bm, c, be, el); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(replans)/float64(b.N), "replans_op")
	}
}

// BenchmarkStragglerTail measures the k-of-n gate's tail-latency win: a
// 3-worker loopback fleet where one worker goes glacial on its first
// installment of every session (1.5s ≫ the ~300ms cancel grace), running the
// same product with full replication through the redundancy gate (timed
// iterations) and with redundancy off (baseline runs). Reported metrics are
// the redundant path's p50/p99 per-run latency in ms, the baseline's, and
// p99_speedup = off p99 / on p99 — the CI gate requires the gate to beat the
// stall by a wide margin rather than serve it out.
func BenchmarkStragglerTail(b *testing.B) {
	const stallFor = 1500 * time.Millisecond
	pl := platform.Homogeneous(3, 1, 1, 60)
	inst := sched.Instance{R: 6, S: 12, T: 4}
	res, err := sched.Het{}.Schedule(pl, inst)
	if err != nil {
		b.Fatal(err)
	}
	plan := res.Plan()
	jobs, _, err := sim.JobsFromPlan(plan)
	if err != nil {
		b.Fatal(err)
	}
	q := 16
	rng := benchRNG()
	a := matrix.NewBlockMatrix(inst.R, inst.T, q)
	bm := matrix.NewBlockMatrix(inst.T, inst.S, q)
	c0 := matrix.NewBlockMatrix(inst.R, inst.S, q)
	a.FillRandom(rng)
	bm.FillRandom(rng)
	c0.FillRandom(rng)

	var addrs []string
	for i := 0; i < pl.P(); i++ {
		ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		o := mmnet.WorkerOptions{Heartbeat: 50 * time.Millisecond}
		if i == 0 {
			o.StallAfterInstalls = 1
			o.StallFor = stallFor
		}
		go mmnet.Serve(ln, addrs[i], o)
	}

	// Each run dials fresh so the per-session stall hook re-arms, and the
	// redundant path's retirement of the stalled link never leaks into the
	// next sample.
	runOnce := func(redundant bool) time.Duration {
		m, err := mmnet.Dial(addrs, &mmnet.MasterOptions{IOTimeout: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		c := c0.Clone()
		start := time.Now()
		if redundant {
			red := &engine.Redundancy{Mode: "replicated"}
			for ji, j := range jobs {
				red.Units = append(red.Units, engine.RedundantUnit{Worker: (j.Worker + 1) % pl.P(), Job: ji})
			}
			err = m.RunRedundantContext(context.Background(), inst.T, plan, a, bm, c, red)
		} else {
			err = m.RunPipelined(inst.T, plan, a, bm, c)
		}
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	pctMS := func(lat []time.Duration, p float64) float64 {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		i := int(p * float64(len(s)-1))
		return float64(s[i]) / float64(time.Millisecond)
	}

	b.ResetTimer()
	on := make([]time.Duration, 0, b.N)
	for i := 0; i < b.N; i++ {
		on = append(on, runOnce(true))
	}
	b.StopTimer()
	const baselineRuns = 3
	off := make([]time.Duration, 0, baselineRuns)
	for i := 0; i < baselineRuns; i++ {
		off = append(off, runOnce(false))
	}
	b.ReportMetric(pctMS(on, 0.50), "p50_ms")
	b.ReportMetric(pctMS(on, 0.99), "p99_ms")
	b.ReportMetric(pctMS(off, 0.50), "off_p50_ms")
	b.ReportMetric(pctMS(off, 0.99), "off_p99_ms")
	b.ReportMetric(pctMS(off, 0.99)/pctMS(on, 0.99), "p99_speedup")
}

// BenchmarkQueuePolicies measures what the sjf queue policy buys small jobs
// on the scheduling lab's bimodal mix: each iteration dumps a burst of 6
// large products followed by 12 small ones on a 4-worker fleet whose leases
// are capped at 2 workers, so two jobs run while the rest queue — the
// head-of-line-blocking shape hypotheses/fifo-vs-sjf studies. The same burst
// runs under fifo and under sjf, and the headline metric is
// sjf_small_p99_speedup, the within-run ratio of small-job p99 latencies
// (CI gates on ≥2; a ratio from one run is machine-independent, so the gate
// is not skippable by the perf-regression label — falling below the floor
// means the policy stopped reordering, not that the machine was slow).
func BenchmarkQueuePolicies(b *testing.B) {
	const (
		fleetSize = 4
		nLarge    = 6
		nSmall    = 12
	)
	largeInst, largeQ := sched.Instance{R: 8, S: 8, T: 8}, 48
	smallInst, smallQ := sched.Instance{R: 2, S: 2, T: 2}, 16
	rng := benchRNG()
	mk := func(inst sched.Instance, q int) (a, bm, c *matrix.BlockMatrix) {
		a = matrix.NewBlockMatrix(inst.R, inst.T, q)
		bm = matrix.NewBlockMatrix(inst.T, inst.S, q)
		c = matrix.NewBlockMatrix(inst.R, inst.S, q)
		a.FillRandom(rng)
		bm.FillRandom(rng)
		c.FillRandom(rng)
		return
	}
	largeA, largeB, largeC := mk(largeInst, largeQ)
	smallA, smallB, smallC := mk(smallInst, smallQ)

	// runPolicy plays b.N bursts against a fresh fleet under one policy and
	// returns every small job's submit-to-done latency.
	runPolicy := func(policy string) []float64 {
		var addrs []string
		var lns []stdnet.Listener
		for i := 0; i < fleetSize; i++ {
			ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			lns = append(lns, ln)
			addrs = append(addrs, ln.Addr().String())
			go mmnet.Serve(ln, addrs[i], mmnet.WorkerOptions{Heartbeat: 200 * time.Millisecond})
		}
		defer func() {
			for _, ln := range lns {
				ln.Close()
			}
		}()
		fleet, err := serve.NewFleet(addrs, platform.Homogeneous(fleetSize, 1, 1, 60).Workers, serve.FleetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer fleet.Close()
		srv := serve.NewServer(fleet, serve.Config{MaxWorkersPerJob: 2, NoCache: true, QueuePolicy: policy})
		defer srv.Close()

		var mu sync.Mutex
		var lats []float64
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			submit := func(a, bm, c *matrix.BlockMatrix, small bool) {
				start := time.Now()
				id, err := srv.Submit(a, bm, c.Clone())
				if err != nil {
					b.Error(err)
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := srv.Wait(id); err != nil {
						b.Error(err)
						return
					}
					if small {
						mu.Lock()
						lats = append(lats, time.Since(start).Seconds())
						mu.Unlock()
					}
				}()
			}
			for j := 0; j < nLarge; j++ {
				submit(largeA, largeB, largeC, false)
			}
			for j := 0; j < nSmall; j++ {
				submit(smallA, smallB, smallC, true)
			}
			wg.Wait()
		}
		return lats
	}

	pct := func(xs []float64, p float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[int(p*float64(len(s)-1))]
	}

	b.ResetTimer()
	fifo := runPolicy(serve.PolicyFIFO)
	sjf := runPolicy(serve.PolicySJF)
	b.StopTimer()
	if b.Failed() {
		return
	}
	b.ReportMetric(1e3*pct(fifo, 0.99), "fifo_small_p99_ms")
	b.ReportMetric(1e3*pct(sjf, 0.99), "sjf_small_p99_ms")
	b.ReportMetric(pct(fifo, 0.99)/pct(sjf, 0.99), "sjf_small_p99_speedup")
}
